"""The elastic instance pool.

The provisioning controller asks the pool for more machines (paying the boot
delay before they become usable) or releases machines it no longer needs.
The pool records a full time series of running-instance counts so the Figure-1
reproduction can print the same "servers over time" curve the paper shows for
Animoto.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.instances import INSTANCE_TYPES, Instance, InstanceState, InstanceType
from repro.metrics.timeseries import TimeSeries
from repro.sim.simulator import Simulator


class InstancePool:
    """Rents and releases simulated utility-computing instances."""

    def __init__(
        self,
        simulator: Simulator,
        instance_type: InstanceType = INSTANCE_TYPES["m1.small"],
        max_instances: int = 10_000,
    ) -> None:
        if max_instances < 1:
            raise ValueError("max_instances must be at least 1")
        self._sim = simulator
        self.instance_type = instance_type
        self.max_instances = max_instances
        self.billing = BillingMeter()
        self._instances: Dict[str, Instance] = {}
        self._counter = itertools.count()
        self._count_series = TimeSeries(name="running-instances")
        self._count_series.append(simulator.now, 0.0)

    # ----------------------------------------------------------------- renting

    def launch(self, count: int = 1,
               on_ready: Optional[Callable[[Instance], None]] = None,
               boot_delay_override: Optional[float] = None) -> List[Instance]:
        """Request ``count`` new instances.

        Each instance becomes usable after its type's boot delay, at which
        point ``on_ready`` is invoked (the provisioner uses this to attach the
        machine to the storage cluster).  ``boot_delay_override`` exists so a
        controller can adopt machines that are already running (delay 0) at
        experiment start.  Raises ``ValueError`` when the request would exceed
        the pool cap.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if boot_delay_override is not None and boot_delay_override < 0:
            raise ValueError("boot_delay_override must be non-negative")
        if self.active_count() + self.booting_count() + count > self.max_instances:
            raise ValueError(
                f"launching {count} instances would exceed the pool cap of {self.max_instances}"
            )
        boot_delay = (
            self.instance_type.boot_delay if boot_delay_override is None else boot_delay_override
        )
        launched = []
        for _ in range(count):
            instance = Instance(
                instance_id=f"i-{next(self._counter):06d}",
                instance_type=self.instance_type,
                launch_time=self._sim.now,
            )
            self._instances[instance.instance_id] = instance
            self.billing.open_lease(instance.instance_id, self.instance_type, self._sim.now)
            launched.append(instance)

            def make_ready(inst: Instance) -> Callable[[], None]:
                def ready() -> None:
                    if inst.state is InstanceState.TERMINATED:
                        return
                    inst.mark_running(self._sim.now)
                    self._record_count()
                    if on_ready is not None:
                        on_ready(inst)

                return ready

            if boot_delay == 0:
                make_ready(instance)()
            else:
                self._sim.schedule(boot_delay, make_ready(instance),
                                   name=f"boot:{instance.instance_id}")
        self._record_count()
        return launched

    def terminate(self, instance_id: str) -> None:
        """Release one instance (billing charges the started hour)."""
        instance = self._instances.get(instance_id)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        if instance.state is InstanceState.TERMINATED:
            return
        instance.terminate(self._sim.now)
        self.billing.close_lease(instance_id, self._sim.now)
        self._record_count()

    # ------------------------------------------------------------------ queries

    def instances(self, state: Optional[InstanceState] = None) -> List[Instance]:
        """All instances, optionally filtered by state."""
        if state is None:
            return list(self._instances.values())
        return [i for i in self._instances.values() if i.state is state]

    def active_count(self) -> int:
        """Instances currently able to serve traffic."""
        return len(self.instances(InstanceState.RUNNING))

    def booting_count(self) -> int:
        """Instances paid for but not yet usable."""
        return len(self.instances(InstanceState.BOOTING))

    def running_or_booting(self) -> List[Instance]:
        """Instances that are currently being paid for."""
        return [i for i in self._instances.values() if i.state is not InstanceState.TERMINATED]

    def count_series(self) -> TimeSeries:
        """Time series of the number of non-terminated instances."""
        return self._count_series

    def _record_count(self) -> None:
        self._count_series.append(self._sim.now, float(len(self.running_or_booting())))

    # ------------------------------------------------------------------ billing

    def total_cost(self) -> float:
        """Dollars accrued so far (open leases billed up to the current time)."""
        return self.billing.total_cost(self._sim.now)

    def total_machine_hours(self) -> float:
        """Machine-hours accrued so far."""
        return self.billing.total_machine_hours(self._sim.now)
