"""Machine-hour billing, charged per started increment per instance.

On-demand leases keep EC2's classic per-started-hour charging; spot leases
bill per started minute at the market rate prevailing over each increment
(see :mod:`repro.cloud.market`).  A lease is the single source of billing
truth: :class:`~repro.cloud.instances.Instance` carries no cost logic, and a
hibernate/resume cycle is simply two leases on the same instance id.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.instances import ON_DEMAND, InstanceType


@dataclass
class Lease:
    """One instance's rental period.

    Attributes:
        purchase_option: ``"on_demand"`` or ``"spot"``.
        billing_increment: billing granularity in seconds; elapsed time is
            rounded up to whole started increments.
        price_per_hour: for spot leases, the market's hourly price as a
            function of simulated time — each started increment is charged at
            the price in force at its start.  ``None`` bills the instance
            type's flat on-demand rate.
    """

    instance_id: str
    instance_type: InstanceType
    start: float
    end: Optional[float] = None
    purchase_option: str = ON_DEMAND
    billing_increment: Optional[float] = None
    price_per_hour: Optional[Callable[[float], float]] = field(
        default=None, repr=False, compare=False)

    def _increment(self) -> float:
        if self.billing_increment is not None:
            return self.billing_increment
        return self.instance_type.billing_increment

    def machine_hours(self, now: float) -> float:
        """Billable machine-hours: elapsed time rounded up to whole increments."""
        end = self.end if self.end is not None else now
        elapsed = max(end - self.start, 0.0)
        if elapsed <= 0:
            return 0.0
        increment = self._increment()
        return math.ceil(elapsed / increment) * increment / 3600.0

    def cost(self, now: float) -> float:
        """Dollars owed for this lease so far.

        Flat-rate leases are hours times the type's hourly rate.  Market-rate
        leases walk the started increments and charge each at the hourly
        price in force when the increment began — the spot analogue of EC2
        repricing a running instance as the market moves.
        """
        if self.price_per_hour is None:
            return self.machine_hours(now) * self.instance_type.hourly_cost
        end = self.end if self.end is not None else now
        elapsed = max(end - self.start, 0.0)
        if elapsed <= 0:
            return 0.0
        increment = self._increment()
        increments = math.ceil(elapsed / increment)
        hours_per_increment = increment / 3600.0
        return sum(
            self.price_per_hour(self.start + i * increment) * hours_per_increment
            for i in range(increments)
        )


class BillingMeter:
    """Accumulates leases and answers cost queries.

    An instance may hold many leases over its life (one per rental period —
    hibernation closes a lease, resume opens a fresh one), but never more
    than one *open* lease at a time.
    """

    def __init__(self) -> None:
        self._leases: Dict[str, List[Lease]] = {}

    def open_lease(
        self,
        instance_id: str,
        instance_type: InstanceType,
        now: float,
        purchase_option: str = ON_DEMAND,
        billing_increment: Optional[float] = None,
        price_per_hour: Optional[Callable[[float], float]] = None,
    ) -> Lease:
        """Start billing an instance."""
        history = self._leases.setdefault(instance_id, [])
        if history and history[-1].end is None:
            raise ValueError(f"instance {instance_id!r} already has an open lease")
        lease = Lease(
            instance_id=instance_id,
            instance_type=instance_type,
            start=now,
            purchase_option=purchase_option,
            billing_increment=billing_increment,
            price_per_hour=price_per_hour,
        )
        history.append(lease)
        return lease

    def close_lease(self, instance_id: str, now: float) -> Lease:
        """Stop billing an instance (the started increment is still charged)."""
        history = self._leases.get(instance_id)
        if not history:
            raise KeyError(f"no lease for instance {instance_id!r}")
        lease = history[-1]
        if lease.end is None:
            lease.end = now
        return lease

    def has_open_lease(self, instance_id: str) -> bool:
        history = self._leases.get(instance_id)
        return bool(history) and history[-1].end is None

    def leases(self) -> List[Lease]:
        """Every lease ever opened, flattened in open order per instance."""
        return [lease for history in self._leases.values() for lease in history]

    def total_machine_hours(self, now: float) -> float:
        """Machine-hours across every lease, open leases billed up to ``now``."""
        return sum(lease.machine_hours(now) for lease in self.leases())

    def total_cost(self, now: float) -> float:
        """Dollars across every lease, open leases billed up to ``now``."""
        return sum(lease.cost(now) for lease in self.leases())

    def cost_by_purchase_option(self, now: float) -> Dict[str, float]:
        """Dollars split by purchase option (mixed-fleet reporting)."""
        out: Dict[str, float] = {}
        for lease in self.leases():
            out[lease.purchase_option] = out.get(lease.purchase_option, 0.0) + lease.cost(now)
        return out

    def open_lease_count(self) -> int:
        """Number of instances currently being billed."""
        return sum(1 for history in self._leases.values()
                   if history and history[-1].end is None)
