"""Machine-hour billing, charged per started hour per instance (EC2-style)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.instances import InstanceType


@dataclass
class Lease:
    """One instance's rental period."""

    instance_id: str
    instance_type: InstanceType
    start: float
    end: Optional[float] = None

    def machine_hours(self, now: float) -> float:
        """Billable machine-hours: elapsed time rounded up to whole hours."""
        end = self.end if self.end is not None else now
        elapsed = max(end - self.start, 0.0)
        return float(math.ceil(elapsed / 3600.0)) if elapsed > 0 else 0.0

    def cost(self, now: float) -> float:
        """Dollars owed for this lease so far."""
        return self.machine_hours(now) * self.instance_type.hourly_cost


class BillingMeter:
    """Accumulates leases and answers cost queries."""

    def __init__(self) -> None:
        self._leases: Dict[str, Lease] = {}

    def open_lease(self, instance_id: str, instance_type: InstanceType, now: float) -> Lease:
        """Start billing an instance."""
        if instance_id in self._leases and self._leases[instance_id].end is None:
            raise ValueError(f"instance {instance_id!r} already has an open lease")
        lease = Lease(instance_id=instance_id, instance_type=instance_type, start=now)
        self._leases[instance_id] = lease
        return lease

    def close_lease(self, instance_id: str, now: float) -> Lease:
        """Stop billing an instance (the started hour is still charged)."""
        lease = self._leases.get(instance_id)
        if lease is None:
            raise KeyError(f"no lease for instance {instance_id!r}")
        if lease.end is None:
            lease.end = now
        return lease

    def leases(self) -> List[Lease]:
        return list(self._leases.values())

    def total_machine_hours(self, now: float) -> float:
        """Machine-hours across every lease, open leases billed up to ``now``."""
        return sum(lease.machine_hours(now) for lease in self._leases.values())

    def total_cost(self, now: float) -> float:
        """Dollars across every lease, open leases billed up to ``now``."""
        return sum(lease.cost(now) for lease in self._leases.values())

    def open_lease_count(self) -> int:
        """Number of instances currently being billed."""
        return sum(1 for lease in self._leases.values() if lease.end is None)
