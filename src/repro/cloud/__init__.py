"""Utility-computing substrate: an EC2-like instance pool with billing.

The paper's scaling argument is economic ("keeping idle servers active during
non-peak times is a waste of money") and operational (instances take minutes
to boot, so the provisioner must anticipate load).  This package models both:
instance types with hourly prices and boot delays, an elastic pool, a billing
meter that charges by the started increment, and a spot market with
interruptible (hibernate/resume) instances billed per minute at market rate.
"""

from repro.cloud.instances import (
    INSTANCE_TYPES,
    ON_DEMAND,
    PURCHASE_OPTIONS,
    SPOT,
    Instance,
    InstanceState,
    InstanceType,
)
from repro.cloud.pool import InstancePool, SpotUnavailableError
from repro.cloud.billing import BillingMeter
from repro.cloud.market import (
    NOTICE_SECONDS,
    SPOT_BILLING_INCREMENT,
    InterruptionNotice,
    SpotMarket,
)

__all__ = [
    "Instance",
    "InstanceState",
    "InstanceType",
    "INSTANCE_TYPES",
    "ON_DEMAND",
    "SPOT",
    "PURCHASE_OPTIONS",
    "InstancePool",
    "SpotUnavailableError",
    "BillingMeter",
    "SpotMarket",
    "InterruptionNotice",
    "NOTICE_SECONDS",
    "SPOT_BILLING_INCREMENT",
]
