"""Utility-computing substrate: an EC2-like instance pool with billing.

The paper's scaling argument is economic ("keeping idle servers active during
non-peak times is a waste of money") and operational (instances take minutes
to boot, so the provisioner must anticipate load).  This package models both:
instance types with hourly prices and boot delays, an elastic pool, and a
billing meter that charges by the (partial) machine hour.
"""

from repro.cloud.instances import Instance, InstanceState, InstanceType, INSTANCE_TYPES
from repro.cloud.pool import InstancePool
from repro.cloud.billing import BillingMeter

__all__ = [
    "Instance",
    "InstanceState",
    "InstanceType",
    "INSTANCE_TYPES",
    "InstancePool",
    "BillingMeter",
]
