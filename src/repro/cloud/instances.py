"""Instance types and instance lifecycle.

Prices and boot times are modelled on 2008-era EC2 (the paper's setting):
an m1.small at $0.10/hour booting in a couple of minutes.  Absolute values
only matter for the cost experiments' *ratios* (autoscaled vs. static), so
the defaults are round numbers documented here rather than hidden constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class InstanceState(enum.Enum):
    """Lifecycle of a rented instance."""

    BOOTING = "booting"
    RUNNING = "running"
    HIBERNATED = "hibernated"
    TERMINATED = "terminated"


# Purchase options for a launch: reliable on-demand capacity, or spot
# capacity that is cheaper but revocable with a two-minute notice.
ON_DEMAND = "on_demand"
SPOT = "spot"
PURCHASE_OPTIONS = (ON_DEMAND, SPOT)


@dataclass(frozen=True)
class InstanceType:
    """A rentable machine class.

    Attributes:
        name: type label (e.g. ``m1.small``).
        hourly_cost: dollars per machine-hour, billed per started hour.
        boot_delay: seconds from the rent request until the instance is usable.
        capacity_ops_per_sec: sustainable storage-request rate when used as a
            storage node; this is how the capacity planner converts "ops/sec
            needed" into "instances needed".
        billing_increment: billing granularity in seconds.  On-demand rentals
            keep EC2's classic per-started-hour charging (3600 s); spot
            leases bill per started minute (see
            :data:`repro.cloud.market.SPOT_BILLING_INCREMENT`).
    """

    name: str
    hourly_cost: float
    boot_delay: float
    capacity_ops_per_sec: float
    billing_increment: float = 3600.0

    def __post_init__(self) -> None:
        if self.hourly_cost < 0:
            raise ValueError("hourly cost must be non-negative")
        if self.boot_delay < 0:
            raise ValueError("boot delay must be non-negative")
        if self.capacity_ops_per_sec <= 0:
            raise ValueError("capacity must be positive")
        if self.billing_increment <= 0:
            raise ValueError("billing increment must be positive")


INSTANCE_TYPES: Dict[str, InstanceType] = {
    "m1.small": InstanceType(
        name="m1.small", hourly_cost=0.10, boot_delay=120.0, capacity_ops_per_sec=1000.0
    ),
    "m1.large": InstanceType(
        name="m1.large", hourly_cost=0.40, boot_delay=150.0, capacity_ops_per_sec=4500.0
    ),
    "m1.xlarge": InstanceType(
        name="m1.xlarge", hourly_cost=0.80, boot_delay=180.0, capacity_ops_per_sec=9500.0
    ),
}


@dataclass
class Instance:
    """One rented machine.

    Billing lives entirely on the instance's :class:`~repro.cloud.billing.Lease`
    (the pool opens one per rental period, so a hibernate/resume cycle is two
    leases); the instance itself only tracks lifecycle state.
    """

    instance_id: str
    instance_type: InstanceType
    launch_time: float
    purchase_option: str = ON_DEMAND
    state: InstanceState = InstanceState.BOOTING
    ready_time: Optional[float] = None
    termination_time: Optional[float] = None
    hibernate_time: Optional[float] = None

    def mark_running(self, now: float) -> None:
        """Transition from BOOTING to RUNNING (idempotent once terminated-checked)."""
        if self.state is InstanceState.TERMINATED:
            raise ValueError(f"instance {self.instance_id} already terminated")
        self.state = InstanceState.RUNNING
        self.ready_time = now

    def hibernate(self, now: float) -> None:
        """Freeze a running instance: state preserved, billing stopped."""
        if self.state is not InstanceState.RUNNING:
            raise ValueError(
                f"instance {self.instance_id} cannot hibernate from {self.state.value}")
        self.state = InstanceState.HIBERNATED
        self.hibernate_time = now

    def begin_resume(self) -> None:
        """Start waking a hibernated instance (a short boot follows)."""
        if self.state is not InstanceState.HIBERNATED:
            raise ValueError(
                f"instance {self.instance_id} cannot resume from {self.state.value}")
        self.state = InstanceState.BOOTING

    def terminate(self, now: float) -> None:
        """Stop the instance; billing stops at the end of the started increment."""
        if self.state is InstanceState.TERMINATED:
            return
        self.state = InstanceState.TERMINATED
        self.termination_time = now

    def is_usable(self) -> bool:
        """True when the instance can serve traffic."""
        return self.state is InstanceState.RUNNING
