"""A deterministic spot market for interruptible instances.

Models the three behaviours that make spot capacity *cheap but revocable*:

- **Price trace.** Each instance class gets a mean-reverting geometric random
  walk (one step per :data:`PRICE_INTERVAL`), seeded from the simulator's RNG
  registry under its own stream name, so the whole trace is a pure function
  of ``(seed, instance class, step index)`` — adding the market never
  perturbs any other stream, which is what keeps paired-seed sweeps
  byte-identical.  Occasional spikes push the price above the on-demand
  rate, the signal for the fleet layer to fall back to on-demand capacity.
- **Capacity droughts.** Random windows during which the market refuses new
  spot launches and revokes running spot instances — the "capacity
  reclaimed" half of real spot behaviour, independent of price.
- **Interruption notices.** When a class becomes unavailable (drought, price
  at/above on-demand, or a forced storm), every registered instance of that
  class receives a notice with :data:`NOTICE_SECONDS` of warning.  An
  instance still registered at its deadline is forcibly revoked via the
  pool's revoke hook (hibernation) — graceful drain must finish first.

``interruption_storm`` forces a drought window with immediate correlated
notices, the failure injector's entry point for revocation storms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.instances import InstanceType
from repro.sim.simulator import Simulator

# Billing granularity for spot leases (EC2 bills spot per started minute).
SPOT_BILLING_INCREMENT = 60.0

# Warning between an interruption notice and the forced revocation.
NOTICE_SECONDS = 120.0

# Price-trace step width in seconds.
PRICE_INTERVAL = 60.0


@dataclass(slots=True)
class InterruptionNotice:
    """One delivered interruption notice."""

    instance_id: str
    type_name: str
    notice_time: float
    deadline: float
    reason: str  # "drought", "price", or "storm"
    revoked: bool = False  # True if the deadline fired before deregistration


class SpotMarket:
    """Deterministic spot price traces, droughts, and interruption delivery."""

    # Spot trades at roughly a third of on-demand when calm (the 2009-era
    # discount the paper's cost argument would have seen).
    BASE_DISCOUNT = 0.32
    # Mean-reversion strength and per-step volatility of log-price.
    REVERSION = 0.15
    VOLATILITY = 0.08
    # Per-step probability of a demand spike and its multiplier range.
    SPIKE_PROBABILITY = 0.01
    SPIKE_RANGE = (2.5, 4.5)
    # Per-step probability of entering a capacity drought, and its length
    # range in steps.
    DROUGHT_PROBABILITY = 0.004
    DROUGHT_STEPS = (3, 10)

    def __init__(self, simulator: Simulator,
                 instance_types: Optional[List[InstanceType]] = None) -> None:
        self._sim = simulator
        self._types: Dict[str, InstanceType] = {}
        self._prices: Dict[str, List[float]] = {}
        self._droughts: Dict[str, List[bool]] = {}
        self._drought_left: Dict[str, int] = {}
        self._rngs: Dict[str, object] = {}
        # instance_id -> (type_name, on_notice(instance_id, deadline, reason))
        self._registered: Dict[str, Tuple[str, Callable[[str, float, str], None]]] = {}
        self._notices: Dict[str, InterruptionNotice] = {}
        self._notice_log: List[InterruptionNotice] = []
        # Forced (storm) drought windows: list of (start, end).
        self._storms: List[Tuple[float, float]] = []
        self._on_revoke: Optional[Callable[[str], None]] = None
        self._ticking = False
        for instance_type in instance_types or []:
            self.add_instance_type(instance_type)

    # ------------------------------------------------------------------- setup

    def add_instance_type(self, instance_type: InstanceType) -> None:
        """Register a class; its price trace starts at the base discount."""
        name = instance_type.name
        if name in self._types:
            return
        self._types[name] = instance_type
        self._prices[name] = [instance_type.hourly_cost * self.BASE_DISCOUNT]
        self._droughts[name] = [False]
        self._drought_left[name] = 0
        self._rngs[name] = self._sim.random.get(f"spot-market:{name}")

    def set_revoke_hook(self, hook: Callable[[str], None]) -> None:
        """Called with an instance id whose notice deadline expired un-drained."""
        self._on_revoke = hook

    def start(self) -> None:
        """Begin periodic interruption checks (one per price step)."""
        if self._ticking:
            return
        self._ticking = True
        self._sim.schedule_periodic(PRICE_INTERVAL, self._tick, name="spot-market-tick")

    # ------------------------------------------------------------------- trace

    def _ensure_steps(self, type_name: str, step: int) -> None:
        """Lazily extend the price/drought trace through ``step``.

        Draws a fixed four variates per step so the trace depends only on the
        step index, never on the query pattern that forced the extension.
        """
        prices = self._prices[type_name]
        droughts = self._droughts[type_name]
        rng = self._rngs[type_name]
        instance_type = self._types[type_name]
        base = instance_type.hourly_cost * self.BASE_DISCOUNT
        while len(prices) <= step:
            z = rng.normal()
            u_spike = rng.uniform()
            u_drought = rng.uniform()
            u_len = rng.uniform()
            log_prev = math.log(max(prices[-1], 1e-6))
            log_base = math.log(base)
            log_next = (log_prev
                        + self.REVERSION * (log_base - log_prev)
                        + self.VOLATILITY * z)
            price = math.exp(log_next)
            if u_spike < self.SPIKE_PROBABILITY:
                lo, hi = self.SPIKE_RANGE
                price *= lo + (hi - lo) * u_len
            prices.append(min(price, instance_type.hourly_cost * 10.0))
            left = self._drought_left[type_name]
            if left > 0:
                droughts.append(True)
                self._drought_left[type_name] = left - 1
            elif u_drought < self.DROUGHT_PROBABILITY:
                lo_s, hi_s = self.DROUGHT_STEPS
                length = lo_s + int(u_len * (hi_s - lo_s + 1))
                droughts.append(True)
                self._drought_left[type_name] = max(length - 1, 0)
            else:
                droughts.append(False)

    def _step_for(self, t: float) -> int:
        return max(int(t // PRICE_INTERVAL), 0)

    def price(self, type_name: str, at: Optional[float] = None) -> float:
        """Hourly spot price of a class at time ``at`` (default: now)."""
        if type_name not in self._types:
            raise KeyError(f"unknown instance class {type_name!r}")
        t = self._sim.now if at is None else at
        step = self._step_for(t)
        self._ensure_steps(type_name, step)
        return self._prices[type_name][step]

    def price_fn(self, type_name: str) -> Callable[[float], float]:
        """The price trace as a pure callable, for market-rate leases."""
        return lambda t: self.price(type_name, at=t)

    def in_drought(self, type_name: str, at: Optional[float] = None) -> bool:
        """True during a capacity drought (random or storm-forced)."""
        t = self._sim.now if at is None else at
        for start, end in self._storms:
            if start <= t < end:
                return True
        step = self._step_for(t)
        self._ensure_steps(type_name, step)
        return self._droughts[type_name][step]

    def available(self, type_name: str) -> bool:
        """True when new spot capacity of this class can be had profitably:
        no drought and the spot price is below the on-demand rate."""
        if type_name not in self._types:
            return False
        if self.in_drought(type_name):
            return False
        return self.price(type_name) < self._types[type_name].hourly_cost

    # ---------------------------------------------------------- registration

    def register(self, instance_id: str, type_name: str,
                 on_notice: Callable[[str, float, str], None]) -> None:
        """Track a running spot instance; ``on_notice`` is called with
        ``(instance_id, deadline, reason)`` when the market revokes it."""
        if type_name not in self._types:
            raise KeyError(f"unknown instance class {type_name!r}")
        self._registered[instance_id] = (type_name, on_notice)

    def unregister(self, instance_id: str) -> None:
        """Stop tracking an instance (drained, hibernated, or terminated)."""
        self._registered.pop(instance_id, None)
        self._notices.pop(instance_id, None)

    def registered_count(self) -> int:
        return len(self._registered)

    def notices(self) -> List[InterruptionNotice]:
        """Every notice ever delivered, in delivery order."""
        return list(self._notice_log)

    # ------------------------------------------------------------ revocation

    def _tick(self) -> None:
        for instance_id, (type_name, _) in list(self._registered.items()):
            if instance_id in self._notices:
                continue
            if self.in_drought(type_name):
                self._issue_notice(instance_id, "drought")
            elif self.price(type_name) >= self._types[type_name].hourly_cost:
                self._issue_notice(instance_id, "price")

    def _issue_notice(self, instance_id: str, reason: str) -> None:
        entry = self._registered.get(instance_id)
        if entry is None or instance_id in self._notices:
            return
        type_name, on_notice = entry
        now = self._sim.now
        notice = InterruptionNotice(
            instance_id=instance_id,
            type_name=type_name,
            notice_time=now,
            deadline=now + NOTICE_SECONDS,
            reason=reason,
        )
        self._notices[instance_id] = notice
        self._notice_log.append(notice)
        self._sim.schedule(NOTICE_SECONDS, lambda: self._enforce_deadline(instance_id),
                           name=f"spot-revoke:{instance_id}")
        on_notice(instance_id, notice.deadline, reason)

    def _enforce_deadline(self, instance_id: str) -> None:
        """Forcibly revoke an instance that outlived its notice."""
        notice = self._notices.get(instance_id)
        if notice is None or instance_id not in self._registered:
            return  # drained/hibernated in time
        notice.revoked = True
        self._registered.pop(instance_id, None)
        self._notices.pop(instance_id, None)
        if self._on_revoke is not None:
            self._on_revoke(instance_id)

    def interruption_storm(self, at: float, duration: float) -> None:
        """Force a drought window with immediate correlated revocations.

        Every spot instance registered when the storm lands gets its notice
        at ``at``; instances launched during the window are refused (the
        drought makes ``available`` False) so the fleet layer falls back to
        on-demand until the storm passes.
        """
        if duration <= 0:
            raise ValueError("storm duration must be positive")
        self._storms.append((at, at + duration))

        def land() -> None:
            for instance_id in list(self._registered.keys()):
                self._issue_notice(instance_id, "storm")

        self._sim.schedule_at(at, land, name="spot-storm")
