"""Distributed storage substrate.

An in-process, discrete-event-simulated stand-in for the range-partitioned,
replicated column store (Cassandra) the paper plans to build on.  It provides
ordered per-namespace key/value storage on simulated nodes, range and
consistent-hash partitioning, asynchronous (lazy) replication with observable
lag, quorum operations, live data movement for elastic scaling, a durability
model, and failure injection.
"""

from repro.storage.records import KeyRange, Record, VersionedValue
from repro.storage.node import NodeStats, StorageNode
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    PartitionInfo,
    Partitioner,
    RangePartitioner,
)
from repro.storage.replication import ReplicaGroup, ReplicationEngine
from repro.storage.router import RequestResult, Router
from repro.storage.cluster import Cluster, MigrationRecord
from repro.storage.durability import DurabilityModel
from repro.storage.failure import FailureInjector
from repro.storage.rebalancer import (
    PartitionLoadTracker,
    RebalanceAction,
    Rebalancer,
)

__all__ = [
    "Record",
    "VersionedValue",
    "KeyRange",
    "StorageNode",
    "NodeStats",
    "Partitioner",
    "PartitionInfo",
    "RangePartitioner",
    "ConsistentHashPartitioner",
    "ReplicaGroup",
    "ReplicationEngine",
    "Router",
    "RequestResult",
    "Cluster",
    "MigrationRecord",
    "DurabilityModel",
    "FailureInjector",
    "PartitionLoadTracker",
    "RebalanceAction",
    "Rebalancer",
]
