"""Replica groups and the lazy replication engine.

Writes are accepted at a replica group's primary and propagated to the other
replicas asynchronously.  Propagation delay is the sum of a network hop and a
configurable replication processing delay, and every completed propagation is
recorded so that the staleness-bound experiments (E4) and the read-consistency
axis of Figure 4 can measure actual replication lag rather than assume it.

Quorum writes (used to implement the "serializable" end of the write-
consistency axis and as the Dynamo-style baseline) wait for ``W`` replicas
synchronously, paying the extra latency up front.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.network import NetworkModel, NetworkPartitionError
from repro.sim.simulator import Simulator
from repro.storage.node import NodeDownError, StorageNode
from repro.storage.records import Key, VersionedValue


@dataclass
class ReplicaGroup:
    """A set of storage nodes holding copies of the same key ranges."""

    group_id: str
    node_ids: List[str]

    @property
    def primary(self) -> str:
        """The node that accepts writes for this group."""
        if not self.node_ids:
            raise ValueError(f"replica group {self.group_id} has no nodes")
        return self.node_ids[0]

    @property
    def replicas(self) -> List[str]:
        """The non-primary members of the group."""
        return self.node_ids[1:]

    @property
    def replication_factor(self) -> int:
        return len(self.node_ids)


@dataclass(slots=True)
class PropagationRecord:
    """Bookkeeping for one write's propagation to one replica."""

    namespace: str
    key: Key
    write_time: float
    replica_id: str
    applied_time: Optional[float] = None

    @property
    def lag(self) -> Optional[float]:
        """Replication lag in seconds, or None if not yet applied."""
        if self.applied_time is None:
            return None
        return self.applied_time - self.write_time


class ReplicationEngine:
    """Propagates primary writes to replicas asynchronously.

    Args:
        simulator: the discrete-event simulator used to schedule propagation.
        network: network model supplying hop delays and partitions.
        nodes: mapping from node id to :class:`StorageNode`.
        processing_delay: extra per-write replication processing time at the
            replica, on top of the network hop.
        retry_interval: how long to wait before retrying a propagation that
            failed because of a partition or a crashed replica.
    """

    COMPLETED_LAG_WINDOW = 10_000

    def __init__(
        self,
        simulator: Simulator,
        network: NetworkModel,
        nodes: Dict[str, StorageNode],
        processing_delay: float = 0.002,
        retry_interval: float = 1.0,
        max_retries: int = 100,
    ) -> None:
        self._sim = simulator
        self._network = network
        self._nodes = nodes
        self._processing_delay = processing_delay
        self._retry_interval = retry_interval
        self._max_retries = max_retries
        # Completed propagations are recorded as bare lag floats in a
        # bounded recent window (plus an all-time running max): keeping every
        # PropagationRecord alive forever made long closed-loop runs
        # accumulate millions of gc-tracked objects.
        self._completed_lags: Deque[float] = deque(maxlen=self.COMPLETED_LAG_WINDOW)
        self._max_lag: float = 0.0
        self._pending: int = 0
        self._lag_listeners: List[Callable[[PropagationRecord], None]] = []

    # -------------------------------------------------------------- listeners

    def add_lag_listener(self, listener: Callable[[PropagationRecord], None]) -> None:
        """Register a callback invoked whenever a propagation completes."""
        self._lag_listeners.append(listener)

    # ------------------------------------------------------------ propagation

    def propagate(
        self,
        group: ReplicaGroup,
        namespace: str,
        key: Key,
        value: VersionedValue,
        delay_override: Optional[float] = None,
    ) -> List[PropagationRecord]:
        """Schedule asynchronous propagation of a primary write to all replicas.

        ``delay_override`` lets the deadline-ordered index updater inject its
        own scheduling decision (propagate sooner for tight staleness bounds).
        """
        records = []
        node_ids = group.node_ids
        primary_id = node_ids[0]
        now = self._sim.clock.now
        name = f"replicate:{namespace}"
        for i in range(1, len(node_ids)):
            replica_id = node_ids[i]
            replica = self._nodes.get(replica_id)
            if replica is not None and replica.draining:
                # Draining replicas accept no new writes: they are about to
                # detach (spot interruption) and will catch up from the
                # primary if they ever rejoin, so shipping them updates now
                # only races the drain deadline.
                continue
            record = PropagationRecord(
                namespace=namespace,
                key=key,
                write_time=now,
                replica_id=replica_id,
            )
            records.append(record)
            self._pending += 1
            self._schedule_apply(primary_id, replica_id, namespace, key, value,
                                 record, delay_override,
                                 retries_left=self._max_retries, name=name)
        return records

    def _schedule_apply(
        self,
        primary_id: str,
        replica_id: str,
        namespace: str,
        key: Key,
        value: VersionedValue,
        record: PropagationRecord,
        delay_override: Optional[float],
        retries_left: int,
        name: str = "",
    ) -> None:
        try:
            hop = self._network.delay(primary_id, replica_id)
        except NetworkPartitionError:
            hop = None
        if hop is None:
            self._schedule_retry(primary_id, replica_id, namespace, key, value,
                                 record, delay_override, retries_left)
            return
        delay = hop + self._processing_delay if delay_override is None else delay_override

        def apply() -> None:
            node = self._nodes.get(replica_id)
            if node is None:
                # Replica left the cluster for good (decommission or spot
                # drain/hibernate detach); ownership moved with it, so the
                # copy is moot — drop instead of retrying into the void.
                self._pending -= 1
                return
            if not node.alive:
                self._schedule_retry(primary_id, replica_id, namespace, key, value,
                                     record, delay_override, retries_left)
                return
            node.apply_replica_write(namespace, key, value)
            record.applied_time = self._sim.clock.now
            self._pending -= 1
            lag = record.applied_time - record.write_time
            self._completed_lags.append(lag)
            if lag > self._max_lag:
                self._max_lag = lag
            for listener in self._lag_listeners:
                listener(record)

        self._sim.schedule(delay, apply, name=name or f"replicate:{namespace}")

    def _schedule_retry(
        self,
        primary_id: str,
        replica_id: str,
        namespace: str,
        key: Key,
        value: VersionedValue,
        record: PropagationRecord,
        delay_override: Optional[float],
        retries_left: int,
    ) -> None:
        if retries_left <= 0:
            # Give up; the record stays un-applied and shows up as unbounded lag.
            self._pending -= 1
            return

        def retry() -> None:
            self._schedule_apply(primary_id, replica_id, namespace, key, value,
                                 record, delay_override, retries_left - 1)

        self._sim.schedule(self._retry_interval, retry, name="replicate-retry")

    def replicate_to(
        self,
        source_id: str,
        replica_id: str,
        namespace: str,
        key: Key,
        value: VersionedValue,
    ) -> PropagationRecord:
        """Propagate one write to one specific node, with the retry loop.

        Used by the router's migration dual-write path: a write accepted at
        the migration source while the target primary is down must still
        reach that primary once it recovers, or reclamation of the source
        copies would lose it.
        """
        record = PropagationRecord(
            namespace=namespace,
            key=key,
            write_time=self._sim.now,
            replica_id=replica_id,
        )
        self._pending += 1
        self._schedule_apply(source_id, replica_id, namespace, key, value,
                             record, None, retries_left=self._max_retries)
        return record

    # --------------------------------------------------------------- sync path

    def synchronous_write(
        self,
        group: ReplicaGroup,
        namespace: str,
        key: Key,
        value: VersionedValue,
        write_quorum: int,
        now: float,
    ) -> Tuple[int, float]:
        """Write to ``write_quorum`` replicas synchronously.

        Returns (acks, added_latency).  The added latency is the slowest of
        the contacted replicas' round trips (the client waits for the quorum).
        Used for serializable writes and the quorum-store baseline.
        """
        if write_quorum < 1:
            raise ValueError(f"write quorum must be >= 1, got {write_quorum}")
        if write_quorum > group.replication_factor:
            raise ValueError(
                f"write quorum {write_quorum} exceeds replication factor "
                f"{group.replication_factor}"
            )
        acks = 0
        slowest = 0.0
        for node_id in group.node_ids:
            if acks >= write_quorum:
                break
            node = self._nodes.get(node_id)
            if node is None or not node.alive or node.draining:
                continue
            try:
                if node_id == group.primary:
                    round_trip = 0.0
                else:
                    round_trip = 2.0 * self._network.delay(group.primary, node_id)
            except NetworkPartitionError:
                continue
            try:
                service = node.put(namespace, key, value, now) if node_id != group.primary \
                    else 0.0
            except NodeDownError:
                continue
            acks += 1
            slowest = max(slowest, round_trip + service)
        return acks, slowest

    # --------------------------------------------------------------- reporting

    def pending_count(self) -> int:
        """Number of propagations scheduled but not yet applied."""
        return self._pending

    def completed_lags(self) -> List[float]:
        """Lags (seconds) of the most recent completed propagations.

        Bounded to the last ``COMPLETED_LAG_WINDOW`` completions so long runs
        do not accumulate an unbounded list; ``max_observed_lag`` stays
        all-time.
        """
        return list(self._completed_lags)

    def max_observed_lag(self) -> float:
        """The worst completed replication lag so far (0 if none completed)."""
        return self._max_lag
