"""Hot-partition management: per-partition load tracking and skew repair.

The provisioning controller scales the cluster in whole replica groups, which
is the right unit when *aggregate* demand changes.  But a skewed (Zipf)
workload can violate the latency SLA while the cluster as a whole has plenty
of headroom: one group's nodes run hot and the rest idle.  Renting another
group barely helps — consistent placement gives the new group a proportional
slice of *all* keys, not the hot ones — and it costs real dollars.

The :class:`Rebalancer` offers the controller a cheaper action.  It watches
per-partition load (a decayed token-frequency sketch fed by the router),
detects a hot replica group coexisting with a cold one, and repairs the skew
with sub-group operations on the cluster:

* range partitioner — migrate the hottest partition the hot group owns to the
  cold group; if the hot group owns a single partition, first *split* it at
  the tracked load median, then migrate the cheaper half;
* consistent-hash partitioner — shift ring weight from the hot group to the
  cold one, moving only the tokens covered by the retired virtual nodes.

Cold hygiene runs in quiet windows: adjacent same-owner partitions whose
combined tracked load is negligible are merged so the split-point table does
not grow without bound.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.storage.cluster import Cluster
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    RangePartitioner,
    partition_token,
)


@dataclass
class RebalanceAction:
    """One executed repartitioning action, for experiment reporting."""

    time: float
    kind: str  # "migrate", "split_migrate", "weight_shift", "merge"
    detail: str
    keys_moved: int = 0


class PartitionLoadTracker:
    """A decayed access-frequency sketch over partition tokens.

    The router reports every routed key's partition token; the tracker keeps
    an exponentially decayed count per token, pruning the coldest entries when
    the sketch exceeds ``max_tokens`` so memory stays bounded regardless of
    key-space size.  Counts are therefore *recent* load, which is what split
    and migration decisions should be based on.
    """

    def __init__(self, max_tokens: int = 1024, half_life: float = 60.0) -> None:
        if max_tokens < 2:
            raise ValueError(f"max_tokens must be >= 2, got {max_tokens}")
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self._max_tokens = max_tokens
        self._half_life = half_life
        self._counts: Dict[str, float] = {}
        self._last_decay = 0.0
        self.total_accesses = 0
        self.prunes_total = 0

    def note(self, token: str, is_write: bool, now: float) -> None:
        """Record one access to ``token`` at simulated time ``now``."""
        self._maybe_decay(now)
        self._counts[token] = self._counts.get(token, 0.0) + 1.0
        self.total_accesses += 1
        if len(self._counts) > self._max_tokens:
            self._prune()

    def _maybe_decay(self, now: float) -> None:
        elapsed = now - self._last_decay
        if elapsed < self._half_life / 4.0:
            return
        factor = 0.5 ** (elapsed / self._half_life)
        self._counts = {t: c * factor for t, c in self._counts.items() if c * factor >= 0.25}
        self._last_decay = now

    def _prune(self) -> None:
        keep = sorted(self._counts.items(), key=lambda tc: tc[1],
                      reverse=True)[: self._max_tokens // 2]
        self._counts = dict(keep)
        # Pruning discards the cold tail's mass, so from here on the sketch
        # under-counts total load (fine for hot/cold *ranking*, not for
        # absolute rates) — consumers of rate_estimate() can check this.
        self.prunes_total += 1

    # ------------------------------------------------------------------ queries

    def counts(self) -> Dict[str, float]:
        return dict(self._counts)

    def total_load(self) -> float:
        return sum(self._counts.values())

    def rate_estimate(self) -> float:
        """Cluster access rate implied by the decayed totals (ops/sec).

        At steady state an exponentially decayed counter holds
        ``rate * half_life / ln 2``, so inverting it gives a low-variance,
        unbiased rate — unlike summing per-node interarrival EWMAs, whose
        reciprocal is systematically high (Jensen) and noisy.
        """
        return self.total_load() * math.log(2) / self._half_life

    def load_between(self, lower: str, upper: Optional[str]) -> float:
        """Tracked load whose token falls in ``[lower, upper)``."""
        return sum(
            count for token, count in self._counts.items()
            if token >= lower and (upper is None or token < upper)
        )

    def split_point(self, lower: str, upper: Optional[str]) -> Optional[str]:
        """The token that halves the tracked load within ``[lower, upper)``.

        Returns None when the range holds fewer than two tracked tokens (a
        single hot token cannot be split any finer).
        """
        in_range = sorted(
            (token, count) for token, count in self._counts.items()
            if token >= lower and (upper is None or token < upper)
        )
        if len(in_range) < 2:
            return None
        total = sum(count for _, count in in_range)
        cumulative = 0.0
        for token, count in in_range:
            if token > lower and cumulative >= total / 2.0:
                return token
            cumulative += count
        # Load is concentrated at the tail; split just before the last token.
        return in_range[-1][0] if in_range[-1][0] > lower else None


class Rebalancer:
    """Detects hot/cold replica groups and repairs skew with sub-group actions.

    Args:
        cluster: the cluster to operate on (the tracker is attached to it).
        tracker: per-partition load sketch fed by the router.
        hot_utilisation: a group whose mean node utilisation exceeds this is a
            migration source candidate.
        cold_utilisation: a group below this can absorb migrated load.
        merge_load_fraction: adjacent same-owner partitions whose combined
            tracked load is below this fraction of the total are merge
            candidates during cold hygiene.
        receiver_target_utilisation: a migration must not push the receiving
            group's mean utilisation past this; it is the utilisation at which
            tail latency still comfortably meets the SLA, so it is tighter
            than ``hot_utilisation``.  Defaults to the midpoint of
            ``cold_utilisation`` and ``hot_utilisation`` so it scales with
            however the detection thresholds were calibrated.
        weight_step: ring-weight shift per action (hash partitioner).
        cooldown: minimum simulated seconds between actions, so one migration
            can take effect (and its load stats settle) before the next.
    """

    def __init__(
        self,
        cluster: Cluster,
        tracker: Optional[PartitionLoadTracker] = None,
        hot_utilisation: float = 0.75,
        cold_utilisation: float = 0.5,
        merge_load_fraction: float = 0.05,
        receiver_target_utilisation: Optional[float] = None,
        weight_step: float = 0.25,
        cooldown: float = 0.0,
    ) -> None:
        if not 0.0 < cold_utilisation < hot_utilisation:
            raise ValueError("need 0 < cold_utilisation < hot_utilisation")
        if not 0.0 <= merge_load_fraction < 1.0:
            raise ValueError("merge_load_fraction must be in [0, 1)")
        if receiver_target_utilisation is None:
            receiver_target_utilisation = (cold_utilisation + hot_utilisation) / 2.0
        if receiver_target_utilisation <= 0:
            raise ValueError("receiver_target_utilisation must be positive")
        self._cluster = cluster
        self.tracker = tracker or PartitionLoadTracker()
        self.hot_utilisation = hot_utilisation
        self.cold_utilisation = cold_utilisation
        self.merge_load_fraction = merge_load_fraction
        self.receiver_target_utilisation = receiver_target_utilisation
        self.weight_step = weight_step
        self.cooldown = cooldown
        self._actions: List[RebalanceAction] = []
        self._last_action_time: Optional[float] = None
        cluster.attach_load_tracker(self.tracker)

    # ---------------------------------------------------------------- detection

    def group_utilisations(self) -> Dict[str, float]:
        """Pressure per replica group: its tracked-load share of cluster rate,
        normalised by the group's capacity.

        Individual node utilisation estimates are arrival-EWMAs and noisy (a
        handful of short gaps doubles them); the tracker's decayed counts
        aggregate thousands of accesses, so ownership-weighted shares give a
        far steadier hot/cold signal.  Falls back to node EWMAs while the
        tracker is empty (e.g. a freshly attached rebalancer).
        """
        total_tracked = self.tracker.total_load()
        cluster_rate = self.tracker.rate_estimate()
        partitions = (self._cluster.partitioner.partitions()
                      if isinstance(self._cluster.partitioner, RangePartitioner)
                      else None)
        utilisations: Dict[str, float] = {}
        for group_id, group in self._cluster.groups.items():
            alive = [
                self._cluster.nodes[node_id]
                for node_id in group.node_ids
                if self._cluster.nodes[node_id].alive
            ]
            if not alive:
                utilisations[group_id] = 0.0
                continue
            capacity = len(alive) * self._cluster.node_capacity_ops
            if partitions is not None and total_tracked > 0 and cluster_rate > 0:
                share = sum(
                    self.tracker.load_between(p.lower, p.upper)
                    for p in partitions if p.owner == group_id
                ) / total_tracked
                utilisations[group_id] = share * cluster_rate / capacity
            else:
                utilisations[group_id] = self._cluster.group_mean_utilisation(group_id)
        return utilisations

    def find_imbalance(self) -> Optional[Tuple[str, str]]:
        """A (hot_group, cold_group) pair a sub-group action could repair."""
        utilisations = self.group_utilisations()
        if len(utilisations) < 2:
            return None
        hot = max(utilisations, key=utilisations.get)
        cold = min(utilisations, key=utilisations.get)
        if hot == cold:
            return None
        if utilisations[hot] < self.hot_utilisation:
            return None
        if utilisations[cold] > self.cold_utilisation:
            return None  # everyone is busy; this needs capacity, not placement
        return hot, cold

    def in_cooldown(self) -> bool:
        """True while the last action's load shift is still settling."""
        if self._last_action_time is None:
            return False
        return self._cluster.sim.now - self._last_action_time < self.cooldown

    # ---------------------------------------------------------------- actions

    def rebalance_once(self) -> Optional[RebalanceAction]:
        """Repair one detected imbalance; returns the action taken, if any."""
        now = self._cluster.sim.now
        if self.in_cooldown():
            return None
        imbalance = self.find_imbalance()
        if imbalance is None:
            return None
        hot, cold = imbalance
        if isinstance(self._cluster.partitioner, RangePartitioner):
            action = self._range_action(hot, cold)
        elif isinstance(self._cluster.partitioner, ConsistentHashPartitioner):
            action = self._weight_action(hot, cold)
        else:  # pragma: no cover - no other partitioners exist
            return None
        if action is not None:
            self._actions.append(action)
            self._last_action_time = now
        return action

    def _group_rate(self, group_id: str) -> float:
        """Estimated request rate arriving at one group (ops/sec)."""
        group = self._cluster.groups[group_id]
        return sum(
            self._cluster.nodes[node_id].arrival_rate()
            for node_id in group.node_ids
            if self._cluster.nodes[node_id].alive
        )

    def _tracked_group_load(self, group_id: str) -> float:
        """Tracked load currently owned by one group (range partitioner)."""
        return sum(
            self.tracker.load_between(p.lower, p.upper)
            for p in self._cluster.partitioner.partitions()
            if p.owner == group_id
        )

    def _receiver_headroom_load(self, cold: str) -> float:
        """How much tracked load the cold group can absorb while staying at an
        SLA-compatible utilisation, in the tracker's (decayed-count) units."""
        cold_group = self._cluster.groups[cold]
        alive = sum(1 for node_id in cold_group.node_ids
                    if self._cluster.nodes[node_id].alive)
        capacity_rate = (self.receiver_target_utilisation * alive
                         * self._cluster.node_capacity_ops)
        cluster_rate = self.tracker.rate_estimate()
        total_tracked = self.tracker.total_load()
        if cluster_rate <= 0 or total_tracked <= 0:
            return 0.0
        capacity_load = capacity_rate / cluster_rate * total_tracked
        return max(capacity_load - self._tracked_group_load(cold), 0.0)

    def _range_action(self, hot: str, cold: str) -> Optional[RebalanceAction]:
        """Move the most load that *fits* the receiver, splitting if needed.

        Moving a partition hotter than the cold group's headroom just
        relocates the hotspot (and the next window moves it back), so the
        hottest partition is only migrated wholesale when it fits; otherwise
        it is split at its tracked-load median and the best-fitting half
        moves.  Returns None when nothing can usefully move — the controller
        then falls through to renting capacity, which is the honest answer.
        """
        partitioner = self._cluster.partitioner
        owned = [p for p in partitioner.partitions() if p.owner == hot]
        if not owned:
            return None
        now = self._cluster.sim.now
        headroom = self._receiver_headroom_load(cold)
        if headroom <= 0:
            return None
        # Sanity-check the detection against the steadier tracker estimate:
        # only act when the hot group really is over its own target capacity,
        # so a transient EWMA blip cannot trigger a pointless migration.
        total_tracked = self.tracker.total_load()
        cluster_rate = self.tracker.rate_estimate()
        hot_group = self._cluster.groups[hot]
        hot_alive = sum(1 for node_id in hot_group.node_ids
                        if self._cluster.nodes[node_id].alive)
        hot_tracked = sum(self.tracker.load_between(p.lower, p.upper) for p in owned)
        if total_tracked <= 0 or cluster_rate <= 0:
            return None
        hot_target = (self.receiver_target_utilisation * hot_alive
                      * self._cluster.node_capacity_ops)
        # The load the hot group must shed, in the tracker's units.
        excess_load = hot_tracked - hot_target / cluster_rate * total_tracked
        if excess_load <= 0:
            return None
        # One scan of the hot primary gives every piece's key count via
        # bisect, instead of rescanning per candidate in the loops below.
        hot_primary = self._cluster.nodes[hot_group.primary]
        key_tokens: List[str] = []
        if hot_primary.alive:
            key_tokens = sorted(
                partition_token(key)
                for namespace in hot_primary.namespaces()
                for key, _ in hot_primary.scan_namespace(namespace)
            )

        def keys_in(piece) -> int:
            lo = bisect.bisect_left(key_tokens, piece.lower)
            hi = (len(key_tokens) if piece.upper is None
                  else bisect.bisect_left(key_tokens, piece.upper))
            return hi - lo
        pieces = [(self.tracker.load_between(p.lower, p.upper), p) for p in owned]
        if max(load for load, _ in pieces) <= 0:
            return None

        def migrate(piece, kind: str, detail: str) -> Optional[RebalanceAction]:
            record = self._cluster.migrate_partition(piece.lower, cold)
            if partitioner.partition_for_token(piece.lower).owner != cold:
                # The cluster refused (e.g. the hot primary is down); report
                # no action so the controller can rent capacity instead.
                return None
            moved = record.keys_moved if record is not None else 0
            return RebalanceAction(time=now, kind=kind, keys_moved=moved,
                                   detail=detail)
        # Splits are free (no data moves), so recursively split the hottest
        # piece at its tracked-load median until it fits the receiver — this
        # maximises relief per key moved.  The loop ends when everything fits
        # or the hottest piece is a single unsplittable token.
        splits_made = []
        for _ in range(16):
            hottest_load, hottest = max(pieces, key=lambda lp: lp[0])
            if hottest_load <= headroom:
                break
            split = self.tracker.split_point(hottest.lower, hottest.upper)
            if split is None:
                break
            self._cluster.split_partition(split)
            splits_made.append(split)
            pieces.remove((hottest_load, hottest))
            for piece in (partitioner.partition_for_token(hottest.lower),
                          partitioner.partition_for_token(split)):
                pieces.append(
                    (self.tracker.load_between(piece.lower, piece.upper), piece)
                )
        # Choose what to move: the fewest-keys piece whose load covers the
        # excess (falling back to the largest fitting piece for partial
        # relief), and split an oversized choice back down toward the excess —
        # shedding 2 ops/sec must not cost a 40-key slab migration.
        migrated = None
        for _ in range(8):
            fitting = [(load, p) for load, p in pieces if 0 < load <= headroom]
            if not fitting:
                break
            sufficient = [(load, p) for load, p in fitting if load >= excess_load]
            if not sufficient:
                # Partial relief only: among comparably hot pieces, move the
                # one with the fewest stored keys.
                best_load = max(load for load, _ in fitting)
                comparable = [p for load, p in fitting if load >= 0.8 * best_load]
                migrated = min(comparable, key=keys_in)
                break
            load, piece = min(sufficient, key=lambda lp: keys_in(lp[1]))
            if load <= 1.25 * excess_load:
                migrated = piece
                break
            split = self.tracker.split_point(piece.lower, piece.upper)
            if split is None:
                migrated = piece
                break
            self._cluster.split_partition(split)
            splits_made.append(split)
            pieces.remove((load, piece))
            for half in (partitioner.partition_for_token(piece.lower),
                         partitioner.partition_for_token(split)):
                pieces.append(
                    (self.tracker.load_between(half.lower, half.upper), half)
                )
        if migrated is None:
            # Even a single token exceeds the receiver's headroom: placement
            # cannot fix this; the controller should rent capacity instead.
            return None
        kind = "split_migrate" if splits_made else "migrate"
        prefix = f"split {hot} at {splits_made} then " if splits_made else ""
        return migrate(
            migrated, kind,
            f"{prefix}[{migrated.lower!r}, {migrated.upper!r}) {hot} -> {cold}",
        )

    def _weight_action(self, hot: str, cold: str) -> Optional[RebalanceAction]:
        weight_before = self._cluster.partitioner.weight_of(hot)
        records = self._cluster.shift_weight(hot, cold, step=self.weight_step)
        if self._cluster.partitioner.weight_of(hot) == weight_before:
            # Donor already at the floor: shedding is impossible, so report
            # no action and let the controller fall back to renting capacity.
            return None
        moved = sum(record.keys_moved for record in records)
        return RebalanceAction(
            time=self._cluster.sim.now, kind="weight_shift", keys_moved=moved,
            detail=f"weight {self.weight_step:.2f} {hot} -> {cold} "
                   f"({len(records)} transfer(s))",
        )

    def merge_cold_partitions(self) -> Optional[RebalanceAction]:
        """Merge one adjacent same-owner pair whose combined load is negligible.

        Free (no data moves) and keeps the split-point table from growing
        without bound after many split/migrate cycles.  Called by the
        controller in quiet windows.
        """
        if not isinstance(self._cluster.partitioner, RangePartitioner):
            return None
        partitions = self._cluster.partitioner.partitions()
        if len(partitions) < 2:
            return None
        total = self.tracker.total_load()
        threshold = total * self.merge_load_fraction
        for left, right in zip(partitions, partitions[1:]):
            if left.owner != right.owner:
                continue
            combined = (self.tracker.load_between(left.lower, left.upper)
                        + self.tracker.load_between(right.lower, right.upper))
            if total > 0 and combined > threshold:
                continue
            self._cluster.merge_partitions(left.lower)
            action = RebalanceAction(
                time=self._cluster.sim.now, kind="merge",
                detail=f"[{left.lower!r}, {right.upper!r}) under {left.owner}",
            )
            self._actions.append(action)
            return action
        return None

    # --------------------------------------------------------------- reporting

    def actions(self) -> List[RebalanceAction]:
        return list(self._actions)

    def keys_moved(self) -> int:
        return sum(action.keys_moved for action in self._actions)
