"""Cluster manager: nodes, replica groups, partitioning, and data movement.

The cluster is the thing the provisioning controller scales.  Capacity is
added and removed in units of *replica groups* (a primary plus R-1 replicas),
which keeps the replication factor — and therefore the durability SLA —
invariant under scaling.  Adding or removing a group triggers live data
movement driven by the partitioner's new ownership map.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.network import NetworkModel
from repro.sim.simulator import Simulator
from repro.storage.node import StorageNode
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.storage.records import Key, KeyRange
from repro.storage.replication import ReplicaGroup, ReplicationEngine


@dataclass
class ClusterStats:
    """Aggregate load/size statistics the autoscaler's features are built from."""

    node_count: int
    group_count: int
    total_keys: int
    total_arrival_rate: float
    mean_utilisation: float
    max_utilisation: float
    total_capacity_ops: float


class Cluster:
    """A simulated elastic storage cluster.

    Args:
        simulator: discrete-event simulator shared by all components.
        replication_factor: nodes per replica group.
        initial_groups: number of replica groups to start with.
        node_capacity_ops: per-node sustainable ops/sec.
        partitioner_kind: ``"hash"`` (consistent hashing, default) or ``"range"``.
        movement_rate_keys_per_sec: how fast data movement proceeds; used to
            account a rebalance duration so scale-up is not instantaneous.
    """

    def __init__(
        self,
        simulator: Simulator,
        replication_factor: int = 3,
        initial_groups: int = 2,
        node_capacity_ops: float = 1000.0,
        node_base_latency: float = 0.004,
        partitioner_kind: str = "hash",
        movement_rate_keys_per_sec: float = 50_000.0,
    ) -> None:
        if replication_factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {replication_factor}")
        if initial_groups < 1:
            raise ValueError(f"initial_groups must be >= 1, got {initial_groups}")
        self.sim = simulator
        self.replication_factor = replication_factor
        self.node_capacity_ops = node_capacity_ops
        self.node_base_latency = node_base_latency
        self.movement_rate_keys_per_sec = movement_rate_keys_per_sec
        self.network = NetworkModel(simulator.random.get("network"))
        self.nodes: Dict[str, StorageNode] = {}
        self.groups: Dict[str, ReplicaGroup] = {}
        self._node_counter = itertools.count()
        self._group_counter = itertools.count()
        self._keys_moved_total = 0
        self._rebalance_count = 0

        if partitioner_kind == "hash":
            self.partitioner: Partitioner = ConsistentHashPartitioner()
        elif partitioner_kind == "range":
            # The range partitioner requires a group at construction time, so
            # it is seeded with the id the first add_replica_group() will use.
            self.partitioner = RangePartitioner(group_ids=[self._peek_group_id()])
        else:
            raise ValueError(f"unknown partitioner kind: {partitioner_kind!r}")

        self.replication = ReplicationEngine(
            simulator=simulator,
            network=self.network,
            nodes=self.nodes,
        )

        for _ in range(initial_groups):
            self.add_replica_group()

    # ------------------------------------------------------------------ naming

    def _peek_group_id(self) -> str:
        return f"group-{0}"

    def _new_group_id(self) -> str:
        return f"group-{next(self._group_counter)}"

    def _new_node_id(self, group_id: str) -> str:
        return f"node-{next(self._node_counter)}@{group_id}"

    # ----------------------------------------------------------------- scaling

    def add_replica_group(self) -> ReplicaGroup:
        """Provision a new replica group and rebalance data onto it."""
        group_id = self._new_group_id()
        node_ids = []
        for _ in range(self.replication_factor):
            node_id = self._new_node_id(group_id)
            node = StorageNode(
                node_id=node_id,
                rng=self.sim.random.get(f"node:{node_id}"),
                capacity_ops_per_sec=self.node_capacity_ops,
                base_median_latency=self.node_base_latency,
            )
            self.nodes[node_id] = node
            node_ids.append(node_id)
        group = ReplicaGroup(group_id=group_id, node_ids=node_ids)
        self.groups[group_id] = group
        if isinstance(self.partitioner, RangePartitioner) and group_id == "group-0":
            # The range partitioner was constructed with this group id already.
            pass
        else:
            self.partitioner.add_group(group_id)
        if len(self.groups) > 1:
            self._rebalance()
        return group

    def remove_replica_group(self, group_id: str) -> None:
        """Decommission a replica group after moving its data to the new owners."""
        if group_id not in self.groups:
            raise KeyError(f"unknown replica group {group_id!r}")
        if len(self.groups) == 1:
            raise ValueError("cannot remove the last replica group")
        group = self.groups[group_id]
        self.partitioner.remove_group(group_id)
        # Move every key the departing group holds to its new owner.
        primary = self.nodes[group.primary]
        moved = 0
        for namespace in primary.namespaces():
            for key, value in primary.scan_namespace(namespace):
                target_group = self.groups[self.partitioner.group_for_key(namespace, key)]
                for node_id in target_group.node_ids:
                    self.nodes[node_id].apply_replica_write(namespace, key, value)
                moved += 1
        self._keys_moved_total += moved
        for node_id in group.node_ids:
            self.nodes[node_id].wipe()
            del self.nodes[node_id]
        del self.groups[group_id]
        self._rebalance_count += 1

    def _rebalance(self) -> float:
        """Move keys whose owner changed to their new replica group.

        Returns the simulated duration of the movement (keys moved divided by
        the movement rate); callers that model rebalance latency can use it.
        """
        moved = 0
        for group in list(self.groups.values()):
            primary = self.nodes[group.primary]
            for namespace in primary.namespaces():
                to_move: List[Tuple[Key, object]] = []
                for key, value in primary.scan_namespace(namespace):
                    owner = self.partitioner.group_for_key(namespace, key)
                    if owner != group.group_id:
                        to_move.append((key, value))
                for key, value in to_move:
                    target_group = self.groups[self.partitioner.group_for_key(namespace, key)]
                    for node_id in target_group.node_ids:
                        self.nodes[node_id].apply_replica_write(namespace, key, value)
                    for node_id in group.node_ids:
                        node = self.nodes[node_id]
                        if node.alive:
                            # Remove the migrated copy directly; this is data
                            # movement, not a client delete, so no tombstone.
                            store = node._store(namespace)  # noqa: SLF001 - cluster owns its nodes
                            store.delete(key)
                    moved += 1
        self._keys_moved_total += moved
        self._rebalance_count += 1
        if self.movement_rate_keys_per_sec <= 0:
            return 0.0
        return moved / self.movement_rate_keys_per_sec

    # ----------------------------------------------------------------- routing

    def group_for_key(self, namespace: str, key: Key) -> ReplicaGroup:
        return self.groups[self.partitioner.group_for_key(namespace, key)]

    def groups_for_range(self, key_range: KeyRange) -> List[ReplicaGroup]:
        return [self.groups[g] for g in self.partitioner.groups_for_range(key_range)]

    # ------------------------------------------------------------------- stats

    def node_count(self) -> int:
        return len(self.nodes)

    def group_count(self) -> int:
        return len(self.groups)

    def total_keys(self) -> int:
        """Live keys counted at primaries (replica copies are not double counted)."""
        return sum(self.nodes[g.primary].key_count() for g in self.groups.values())

    def decay_load(self) -> None:
        """Let idle nodes' load estimates decay (run periodically)."""
        now = self.sim.now
        for node in self.nodes.values():
            if node.alive:
                node.decay_load(now)

    def stats(self) -> ClusterStats:
        alive = [n for n in self.nodes.values() if n.alive]
        utilisations = [n.utilisation() for n in alive] or [0.0]
        return ClusterStats(
            node_count=len(self.nodes),
            group_count=len(self.groups),
            total_keys=self.total_keys(),
            total_arrival_rate=float(sum(n.arrival_rate() for n in alive)),
            mean_utilisation=float(np.mean(utilisations)),
            max_utilisation=float(np.max(utilisations)),
            total_capacity_ops=float(sum(n.capacity_ops_per_sec for n in alive)),
        )

    @property
    def keys_moved_total(self) -> int:
        """Total keys moved by all rebalances (data-movement cost metric)."""
        return self._keys_moved_total

    @property
    def rebalance_count(self) -> int:
        return self._rebalance_count
