"""Cluster manager: nodes, replica groups, partitioning, and data movement.

The cluster is the thing the provisioning controller scales.  Capacity is
added and removed in units of *replica groups* (a primary plus R-1 replicas),
which keeps the replication factor — and therefore the durability SLA —
invariant under scaling.  Adding or removing a group triggers live data
movement driven by the partitioner's new ownership map.

Besides whole-group scaling, the cluster supports *sub-group* repartitioning
actions — :meth:`Cluster.split_partition`, :meth:`Cluster.merge_partitions`,
:meth:`Cluster.migrate_partition`, and :meth:`Cluster.shift_weight` — that
move only the keys whose owner actually changed.  Each such move is a *live
migration*: the keys are copied to the new owner immediately, the move is
charged a simulated duration (``keys_moved / movement_rate``, plus one
network hop between the primaries), and until that duration elapses the
migration is "in flight" — the router dual-routes requests for the affected
keys so none are dropped, and the source copies are only deleted when the
migration completes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.sim.network import NetworkModel, NetworkPartitionError
from repro.sim.simulator import Simulator
from repro.storage.node import StorageNode
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    PartitionInfo,
    Partitioner,
    RangePartitioner,
    partition_token,
)
from repro.storage.records import Key, KeyRange
from repro.storage.replication import ReplicaGroup, ReplicationEngine


@dataclass
class MigrationRecord:
    """One in-flight (or completed) targeted key-range migration.

    ``tokens`` is the set of partition tokens whose data was copied to the
    target; while the migration is in flight, requests for those tokens are
    dual-routed (new owner first, source as fallback) and the source copies
    still exist.  ``end_time`` is when the simulated transfer finishes and the
    source copies are reclaimed.
    """

    migration_id: str
    source_group: str
    target_group: str
    tokens: Set[str]
    keys_moved: int
    start_time: float
    end_time: float
    completed: bool = False

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class ClusterStats:
    """Aggregate load/size statistics the autoscaler's features are built from."""

    node_count: int
    group_count: int
    total_keys: int
    total_arrival_rate: float
    mean_utilisation: float
    max_utilisation: float
    total_capacity_ops: float


class Cluster:
    """A simulated elastic storage cluster.

    Class attribute ``MIGRATION_COMPLETION_RETRY`` is how often a finished
    transfer re-checks a still-down target before reclaiming source copies.

    Args:
        simulator: discrete-event simulator shared by all components.
        replication_factor: nodes per replica group.
        initial_groups: number of replica groups to start with.
        node_capacity_ops: per-node sustainable ops/sec.
        partitioner_kind: ``"hash"`` (consistent hashing, default) or ``"range"``.
        movement_rate_keys_per_sec: how fast data movement proceeds; used to
            account a rebalance duration so scale-up is not instantaneous.
        host_map: optional :class:`repro.sim.hosts.HostMap`.  When present,
            every node is placed on a shared physical host with replica-group
            anti-affinity (no group ever holds read/write quorum on one
            host); when None, placement is a no-op and behaviour is
            byte-identical to a host-unaware cluster.
    """

    MIGRATION_COMPLETION_RETRY = 5.0

    def __init__(
        self,
        simulator: Simulator,
        replication_factor: int = 3,
        initial_groups: int = 2,
        node_capacity_ops: float = 1000.0,
        node_base_latency: float = 0.004,
        partitioner_kind: str = "hash",
        movement_rate_keys_per_sec: float = 50_000.0,
        host_map=None,
    ) -> None:
        if replication_factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {replication_factor}")
        if initial_groups < 1:
            raise ValueError(f"initial_groups must be >= 1, got {initial_groups}")
        self.sim = simulator
        self.replication_factor = replication_factor
        self.node_capacity_ops = node_capacity_ops
        self.node_base_latency = node_base_latency
        self.movement_rate_keys_per_sec = movement_rate_keys_per_sec
        self.host_map = host_map
        self.network = NetworkModel(simulator.random.get("network"))
        self.nodes: Dict[str, StorageNode] = {}
        self.groups: Dict[str, ReplicaGroup] = {}
        self._node_counter = itertools.count()
        self._group_counter = itertools.count()
        self._keys_moved_total = 0
        self._rebalance_count = 0
        self._migrations: List[MigrationRecord] = []
        self._migration_counter = itertools.count()
        self._splits_total = 0
        self._merges_total = 0
        self._migrations_total = 0
        self._migration_seconds_total = 0.0
        self._reconciled_keys_total = 0
        self._load_tracker = None
        # Hibernated surge replicas: node_id -> (home group id, frozen node).
        # The node object keeps its data but leaves ``nodes``/its group, so
        # replication and routing forget it until it resumes.
        self._hibernated: Dict[str, Tuple[str, StorageNode]] = {}
        # Hosts placement must avoid until the recorded time: an evacuated
        # host has no nodes left to report residuals, so the quarantine is
        # what stops the next rent from landing on it while it is still
        # degraded (host_id -> lift time).
        self._quarantined_hosts: Dict[str, float] = {}

        if partitioner_kind == "hash":
            self.partitioner: Partitioner = ConsistentHashPartitioner()
        elif partitioner_kind == "range":
            # The range partitioner requires a group at construction time, so
            # it is seeded with the id the first add_replica_group() will use.
            self.partitioner = RangePartitioner(group_ids=[self._peek_group_id()])
        else:
            raise ValueError(f"unknown partitioner kind: {partitioner_kind!r}")

        self.replication = ReplicationEngine(
            simulator=simulator,
            network=self.network,
            nodes=self.nodes,
        )

        for _ in range(initial_groups):
            self.add_replica_group()

    # ------------------------------------------------------------------ naming

    def _peek_group_id(self) -> str:
        return f"group-{0}"

    def _new_group_id(self) -> str:
        return f"group-{next(self._group_counter)}"

    def _new_node_id(self, group_id: str) -> str:
        return f"node-{next(self._node_counter)}@{group_id}"

    # --------------------------------------------------------------- placement

    def _anti_affinity_cap(self) -> int:
        """Max members of one replica group allowed on a single host.

        One less than the majority quorum, so losing (or suffering contention
        on) any single host never takes a group's quorum with it.  Floored at
        1 so rf=1 groups remain placeable.
        """
        quorum = self.replication_factor // 2 + 1
        return max(1, quorum - 1)

    def _place_node(self, node_id: str, sibling_node_ids,
                    extra_avoid=()) -> Optional[str]:
        """Assign ``node_id`` to a host, avoiding anti-affinity violations.

        Hosts already holding the cap's worth of this group's members are
        avoided, as are ``extra_avoid`` hosts (e.g. the noisy host an
        evacuation is fleeing).  No-op when the cluster has no host map.
        """
        if self.host_map is None:
            return None
        avoid = set(extra_avoid)
        avoid.update(self.quarantined_hosts())
        cap = self._anti_affinity_cap()
        counts: Dict[str, int] = {}
        for sibling in sibling_node_ids:
            if sibling == node_id:
                continue
            host = self.host_map.host_of(sibling)
            if host is not None:
                counts[host] = counts.get(host, 0) + 1
        avoid.update(host for host, count in counts.items() if count >= cap)
        return self.host_map.assign(node_id, avoid=avoid)

    def _release_placement(self, node_id: str) -> None:
        if self.host_map is not None:
            self.host_map.release(node_id)

    def quarantine_host(self, host_id: str, until: float) -> None:
        """Bar new placements on ``host_id`` until simulated time ``until``."""
        current = self._quarantined_hosts.get(host_id, float("-inf"))
        self._quarantined_hosts[host_id] = max(current, float(until))

    def quarantined_hosts(self) -> Tuple[str, ...]:
        """Hosts currently barred from placement (expired holds are pruned)."""
        now = self.sim.now
        expired = [h for h, t in self._quarantined_hosts.items() if t <= now]
        for host in expired:
            del self._quarantined_hosts[host]
        return tuple(sorted(self._quarantined_hosts))

    def hosts_of_group(self, group_id: str) -> Dict[str, int]:
        """Physical-host spread of one group: host id -> member count.

        Empty when the cluster has no host map (placement-unaware runs).
        """
        group = self.groups.get(group_id)
        if group is None:
            raise KeyError(f"unknown replica group {group_id!r}")
        spread: Dict[str, int] = {}
        if self.host_map is None:
            return spread
        for node_id in group.node_ids:
            host = self.host_map.host_of(node_id)
            if host is not None:
                spread[host] = spread.get(host, 0) + 1
        return spread

    def anti_affinity_violations(self) -> List[Tuple[str, str, int]]:
        """Replica groups with quorum concentrated on one host.

        Returns ``(group_id, host_id, members_on_host)`` for every group
        whose member count on a single host reaches the majority quorum —
        the invariant the placement path maintains and the audit the
        zone-outage and contention tests assert stays empty.
        """
        violations: List[Tuple[str, str, int]] = []
        if self.host_map is None:
            return violations
        quorum = self.replication_factor // 2 + 1
        for group_id in self.groups:
            for host, count in self.hosts_of_group(group_id).items():
                if count >= quorum and len(self.groups[group_id].node_ids) > 1:
                    violations.append((group_id, host, count))
        return violations

    def replace_replica(self, node_id: str, avoid_hosts=()) -> Optional[str]:
        """Live-migrate one replica onto a fresh node placed off ``avoid_hosts``.

        The replacement is seeded with the group primary's data (the noisy
        original as fallback when the primary is down), spliced into the
        group — keeping primaryship if the departing node held it — and the
        original is decommissioned and its host slot released.  Returns the
        replacement node id, or None when ``node_id`` is not a group member.
        """
        group = self._owning_group(node_id)
        old = self.nodes.get(node_id)
        if group is None or old is None:
            return None
        new_id = self._new_node_id(group.group_id)
        node = StorageNode(
            node_id=new_id,
            rng=self.sim.random.get(f"node:{new_id}"),
            capacity_ops_per_sec=self.node_capacity_ops,
            base_median_latency=self.node_base_latency,
        )
        source = self.nodes.get(group.primary)
        if source is None or not source.alive:
            source = old
        copied = 0
        for namespace in source.namespaces():
            for key, value in source.scan_namespace(namespace):
                node.apply_replica_write(namespace, key, value)
                copied += 1
        self.nodes[new_id] = node
        self._place_node(new_id, group.node_ids, extra_avoid=avoid_hosts)
        was_primary = group.node_ids[0] == node_id
        rest = [nid for nid in group.node_ids if nid != node_id]
        # New list object, never in-place mutation: the router's rotation
        # cache invalidates on list identity.
        group.node_ids = [new_id] + rest if was_primary else rest + [new_id]
        self._keys_moved_total += copied
        self._release_placement(node_id)
        old.wipe()
        del self.nodes[node_id]
        return new_id

    def evacuate_host(self, host_id: str) -> List[Tuple[str, str]]:
        """Move every replica off ``host_id``; returns (old_id, new_id) pairs.

        Replacement nodes are placed with the evacuated host in their avoid
        set on top of the usual anti-affinity, so the contention remediation
        path can never bounce a replica back onto the noisy host.
        """
        if self.host_map is None:
            return []
        moves: List[Tuple[str, str]] = []
        for node_id in self.host_map.nodes_on(host_id):
            new_id = self.replace_replica(node_id, avoid_hosts=(host_id,))
            if new_id is not None:
                moves.append((node_id, new_id))
        return moves

    # ----------------------------------------------------------------- scaling

    def add_replica_group(self) -> ReplicaGroup:
        """Provision a new replica group and rebalance data onto it."""
        group_id = self._new_group_id()
        node_ids = []
        for _ in range(self.replication_factor):
            node_id = self._new_node_id(group_id)
            node = StorageNode(
                node_id=node_id,
                rng=self.sim.random.get(f"node:{node_id}"),
                capacity_ops_per_sec=self.node_capacity_ops,
                base_median_latency=self.node_base_latency,
            )
            self.nodes[node_id] = node
            node_ids.append(node_id)
            self._place_node(node_id, node_ids)
        group = ReplicaGroup(group_id=group_id, node_ids=node_ids)
        self.groups[group_id] = group
        if isinstance(self.partitioner, RangePartitioner) and group_id == "group-0":
            # The range partitioner was constructed with this group id already.
            pass
        else:
            self.partitioner.add_group(group_id)
        if len(self.groups) > 1:
            if isinstance(self.partitioner, RangePartitioner):
                # Ranges do not redistribute by themselves: hand the new group
                # a slice of the busiest group's keys (a live migration).
                self._seed_range_for_new_group(group_id)
            else:
                self._rebalance()
        return group

    # ------------------------------------------- surge replicas / spot drain

    def add_surge_replica(self, group_id: str) -> str:
        """Attach one extra read replica to an existing group.

        Surge replicas add read capacity without touching partition
        ownership: the new node is seeded with a copy of the primary's
        current data and then receives ordinary async replication.  They are
        the unit of *spot* capacity — revocable without shrinking the durable
        quorum, which stays on the group's original on-demand members.
        """
        group = self.groups.get(group_id)
        if group is None:
            raise KeyError(f"unknown group {group_id!r}")
        node_id = self._new_node_id(group_id)
        node = StorageNode(
            node_id=node_id,
            rng=self.sim.random.get(f"node:{node_id}"),
            capacity_ops_per_sec=self.node_capacity_ops,
            base_median_latency=self.node_base_latency,
        )
        primary = self.nodes.get(group.primary)
        if primary is not None and primary.alive:
            for namespace in primary.namespaces():
                for key, value in primary.scan_namespace(namespace):
                    node.apply_replica_write(namespace, key, value)
        self.nodes[node_id] = node
        self._place_node(node_id, group.node_ids)
        # New list object, never in-place append: the router's rotation
        # cache invalidates on list identity.
        group.node_ids = group.node_ids + [node_id]
        return node_id

    def begin_drain(self, node_id: str) -> None:
        """Start gracefully evacuating a node (spot interruption notice).

        The node stops receiving client reads and new replicated writes
        immediately; if it is a group primary it is demoted in favour of the
        first healthy non-draining member so the write path never routes
        through a machine with a revocation deadline.
        """
        node = self.nodes.get(node_id)
        if node is None:
            return
        node.set_draining(True)
        group = self._owning_group(node_id)
        if group is None or group.node_ids[0] != node_id or len(group.node_ids) < 2:
            return
        alternates = [
            nid for nid in group.node_ids[1:]
            if (candidate := self.nodes.get(nid)) is not None
            and candidate.alive and not candidate.draining
        ]
        if not alternates:
            return  # nobody healthy to promote; keep serving until detach
        new_primary = alternates[0]
        group.node_ids = [new_primary] + [nid for nid in group.node_ids
                                          if nid != new_primary]

    def detach_replica(self, node_id: str) -> Optional[StorageNode]:
        """Remove one replica from its group and the cluster, returning it.

        Refuses to detach a group's last member (that is group removal, a
        different operation with data movement).  The returned node object
        still holds its data — the hibernate path stashes it for resume.
        """
        group = self._owning_group(node_id)
        if group is not None:
            if len(group.node_ids) < 2:
                raise ValueError(
                    f"cannot detach {node_id!r}: it is the last member of "
                    f"group {group.group_id!r}")
            group.node_ids = [nid for nid in group.node_ids if nid != node_id]
        self._release_placement(node_id)
        return self.nodes.pop(node_id, None)

    def hibernate_node(self, node_id: str) -> bool:
        """Detach a replica and freeze it (data intact) for a later resume."""
        group = self._owning_group(node_id)
        node = self.detach_replica(node_id)
        if node is None:
            return False
        node.set_draining(False)
        self._hibernated[node_id] = (group.group_id if group is not None else "", node)
        return True

    def resume_hibernated(self, node_id: str) -> Optional[int]:
        """Rejoin a hibernated replica without a cold re-copy.

        The frozen node re-attaches to its home group, hands back any keys it
        no longer owns via :meth:`reconcile_node`, and catches up on what it
        missed with a last-write-wins sweep of the primary — all within one
        simulated instant, so no client read can observe the stale copy.
        Returns the number of keys refreshed from the primary, or None when
        the home group no longer exists (caller should retire the instance).
        """
        entry = self._hibernated.get(node_id)
        if entry is None:
            return None
        group_id, node = entry
        group = self.groups.get(group_id)
        if group is None:
            return None
        del self._hibernated[node_id]
        node.recover()
        node.set_draining(False)
        self.nodes[node_id] = node
        self._place_node(node_id, group.node_ids)
        group.node_ids = group.node_ids + [node_id]
        self.reconcile_node(node_id)
        refreshed = 0
        primary = self.nodes.get(group.primary)
        if primary is not None and primary.alive and primary.node_id != node_id:
            for namespace in primary.namespaces():
                for key, value in primary.scan_namespace(namespace):
                    if node.apply_replica_write(namespace, key, value):
                        refreshed += 1
        return refreshed

    def drop_hibernated(self, node_id: str) -> bool:
        """Forget a hibernated node (its instance was terminated)."""
        return self._hibernated.pop(node_id, None) is not None

    def hibernated_node_ids(self) -> List[str]:
        return list(self._hibernated.keys())

    def _owning_group(self, node_id: str) -> Optional[ReplicaGroup]:
        for group in self.groups.values():
            if node_id in group.node_ids:
                return group
        return None

    def group_mean_utilisation(self, group_id: str) -> float:
        """Mean utilisation over one group's alive nodes (0 when none alive)."""
        group = self.groups[group_id]
        alive = [self.nodes[n] for n in group.node_ids if self.nodes[n].alive]
        if not alive:
            return 0.0
        return sum(node.utilisation() for node in alive) / len(alive)

    def _seed_range_for_new_group(self, group_id: str) -> None:
        """Split the busiest group's fullest partition and migrate half of it
        to a freshly added group.

        This is the *load-oblivious* way capacity relieves pressure under the
        range partitioner — the donor group is chosen by node utilisation but
        the split point is the stored-key median, not the load median (the
        load-aware rebalancer does better; this is its add-a-group baseline).
        """
        donors = [g for g in self.groups.values() if g.group_id != group_id]

        def donor_load(group: ReplicaGroup) -> Tuple[float, int]:
            return (self.group_mean_utilisation(group.group_id),
                    self.nodes[group.primary].key_count())

        donor = max(donors, key=donor_load)
        owned = [p for p in self.partitioner.partitions() if p.owner == donor.group_id]
        if not owned:
            return
        primary = self.nodes[donor.primary]
        # One scan of the donor's primary, bucketing tokens per partition.
        tokens_by_index: Dict[int, set] = {p.index: set() for p in owned}
        owned_by_index = {p.index: p for p in owned}
        for namespace in primary.namespaces():
            for key, _ in primary.scan_namespace(namespace):
                token = partition_token(key)
                info = self.partitioner.partition_for_token(token)
                if info.index in tokens_by_index:
                    tokens_by_index[info.index].add(token)
        best_index = max(tokens_by_index, key=lambda i: len(tokens_by_index[i]))
        best = owned_by_index[best_index]
        best_tokens = sorted(tokens_by_index[best_index])
        if len(best_tokens) < 2:
            return  # nothing worth splitting yet; the group joins empty
        # best_tokens is sorted and unique with len >= 2, so the median index
        # (>= 1) is strictly greater than the partition's lower bound.
        median = best_tokens[len(best_tokens) // 2]
        self.partitioner.split_at(median)
        self.partitioner.reassign(
            self.partitioner.partition_for_token(median).index, group_id
        )
        self._migrate_changed_keys()

    def remove_replica_group(self, group_id: str) -> None:
        """Decommission a replica group after moving its data to the new owners."""
        if group_id not in self.groups:
            raise KeyError(f"unknown replica group {group_id!r}")
        if len(self.groups) == 1:
            raise ValueError("cannot remove the last replica group")
        group = self.groups[group_id]
        if isinstance(self.partitioner, RangePartitioner):
            # Hand the departing group's ranges to the least-loaded survivors
            # (the partitioner's own fallback would pile them onto the first
            # group, re-creating exactly the hotspots scale-down should not).
            survivors = [g for g in self.groups.values() if g.group_id != group_id]
            # Utilisation EWMAs do not move inside this loop, so spread the
            # departing partitions by also counting what each survivor has
            # already been handed — otherwise they all pile onto one group.
            handed: Dict[str, int] = {g.group_id: 0 for g in survivors}
            for part in self.partitioner.partitions():
                if part.owner == group_id:
                    target = min(
                        survivors,
                        key=lambda g: (handed[g.group_id],
                                       self.group_mean_utilisation(g.group_id)),
                    )
                    handed[target.group_id] += 1
                    self.partitioner.reassign(part.index, target.group_id)
        self.partitioner.remove_group(group_id)
        # Move every key the departing group holds to its new owner;
        # ownership resolved once per partition token over the scan.
        primary = self.nodes[group.primary]
        moved = 0
        owner_by_token: Dict[str, ReplicaGroup] = {}
        for namespace in primary.namespaces():
            for key, value in primary.scan_namespace(namespace):
                token = str(key[0])
                target_group = owner_by_token.get(token)
                if target_group is None:
                    target_group = owner_by_token[token] = self.groups[
                        self.partitioner.group_for_token(token)]
                for node_id in target_group.node_ids:
                    node = self.nodes[node_id]
                    if node.alive:
                        node.apply_replica_write(namespace, key, value)
                    else:
                        # Decommission must survive a crashed receiver; the
                        # copy is delivered with retries once it recovers.
                        self.replication.replicate_to(
                            group.primary, node_id, namespace, key, value)
                moved += 1
        self._keys_moved_total += moved
        for node_id in group.node_ids:
            self._release_placement(node_id)
            self.nodes[node_id].wipe()
            del self.nodes[node_id]
        del self.groups[group_id]
        self._rebalance_count += 1

    def _rebalance(self) -> float:
        """Move keys whose owner changed to their new replica group.

        Returns the simulated duration of the movement (keys moved divided by
        the movement rate); callers that model rebalance latency can use it.

        Every rebalance scans every stored key, so ownership is resolved once
        per *partition token* (a local memo over the scan) rather than once
        per key — topology churn over a large keyspace was the dominant
        superlinear cost of long autoscaled runs.
        """
        moved = 0
        group_for_token = self.partitioner.group_for_token
        for group in list(self.groups.values()):
            group_id = group.group_id
            primary = self.nodes[group.primary]
            for namespace in primary.namespaces():
                owner_by_token: Dict[str, str] = {}
                to_move: List[Tuple[Key, object, str]] = []
                for key, value in primary.scan_namespace(namespace):
                    token = str(key[0])  # partition_token(key), inlined
                    owner = owner_by_token.get(token)
                    if owner is None:
                        owner = owner_by_token[token] = group_for_token(token)
                    if owner != group_id:
                        to_move.append((key, value, owner))
                for key, value, owner in to_move:
                    target_group = self.groups[owner]
                    for node_id in target_group.node_ids:
                        self.nodes[node_id].apply_replica_write(namespace, key, value)
                    for node_id in group.node_ids:
                        node = self.nodes[node_id]
                        if node.alive:
                            # Remove the migrated copy directly; this is data
                            # movement, not a client delete, so no tombstone.
                            store = node._store(namespace)  # noqa: SLF001 - cluster owns its nodes
                            store.delete(key)
                    moved += 1
        self._keys_moved_total += moved
        self._rebalance_count += 1
        if self.movement_rate_keys_per_sec <= 0:
            return 0.0
        return moved / self.movement_rate_keys_per_sec

    # ---------------------------------------------------------- repartitioning

    def _require_range_partitioner(self, operation: str) -> RangePartitioner:
        if not isinstance(self.partitioner, RangePartitioner):
            raise TypeError(f"{operation} requires the range partitioner; "
                            f"got {type(self.partitioner).__name__}")
        return self.partitioner

    def split_partition(self, token: str) -> PartitionInfo:
        """Split the partition containing ``token`` at ``token`` (range only).

        A split moves no data — it creates the migratable unit a subsequent
        :meth:`migrate_partition` can hand to a colder replica group.
        """
        info = self._require_range_partitioner("split_partition").split_at(token)
        self._splits_total += 1
        return info

    def migrate_partition(self, token: str,
                          target_group_id: str) -> Optional[MigrationRecord]:
        """Reassign the partition containing ``token`` and move only its keys.

        Returns the in-flight :class:`MigrationRecord`, or None when the
        partition already belongs to the target or holds no keys.
        """
        partitioner = self._require_range_partitioner("migrate_partition")
        if target_group_id not in self.groups:
            raise KeyError(f"unknown replica group {target_group_id!r}")
        info = partitioner.partition_for_token(token)
        if info.owner == target_group_id:
            return None
        if not self.nodes[self.groups[info.owner].primary].alive:
            # Reassigning now would move ownership without moving any data
            # (the changed-key sweep cannot scan a dead primary), making the
            # range unreachable.  Leave ownership alone until it recovers.
            return None
        partitioner.reassign(info.index, target_group_id)
        records = self._migrate_changed_keys()
        for record in records:
            if record.source_group == info.owner and record.target_group == target_group_id:
                return record
        return None

    def merge_partitions(self, token: str) -> int:
        """Merge the partition containing ``token`` with its right neighbour.

        When the neighbours have different owners the right-hand partition is
        first migrated to the left owner; the returned count is the keys that
        migration moved (0 for a same-owner merge, which is free).
        """
        partitioner = self._require_range_partitioner("merge_partitions")
        info = partitioner.partition_for_token(token)
        if info.upper is None:
            raise ValueError(f"partition containing {token!r} has no right neighbour")
        right = partitioner.partition_for_token(info.upper)
        moved = 0
        if right.owner != info.owner:
            if not self.nodes[self.groups[right.owner].primary].alive:
                raise ValueError(
                    f"cannot merge: the primary of {right.owner!r} is down, so "
                    "its keys cannot be moved to the surviving owner"
                )
            partitioner.reassign(right.index, info.owner)
            moved = sum(r.keys_moved for r in self._migrate_changed_keys())
        partitioner.merge_at(info.index)
        self._merges_total += 1
        return moved

    def shift_weight(self, from_group_id: str, to_group_id: str,
                     step: float = 0.25, min_weight: float = 0.25) -> List[MigrationRecord]:
        """Shift ring weight between groups (hash only) and move only the
        keys whose owner changed.

        Weight is conserved: the receiver gains exactly what the donor sheds,
        so a donor already clamped at ``min_weight`` makes this a no-op
        (returning []) instead of silently inflating total ring weight and
        taking share from uninvolved groups.
        """
        if not isinstance(self.partitioner, ConsistentHashPartitioner):
            raise TypeError("shift_weight requires the consistent-hash partitioner; "
                            f"got {type(self.partitioner).__name__}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        for group_id in (from_group_id, to_group_id):
            if group_id not in self.groups:
                raise KeyError(f"unknown replica group {group_id!r}")
        from_weight = self.partitioner.weight_of(from_group_id)
        new_from_weight = max(from_weight - step, min_weight)
        shed = from_weight - new_from_weight
        if shed <= 0:
            return []
        self.partitioner.set_weight(from_group_id, new_from_weight)
        self.partitioner.set_weight(
            to_group_id, self.partitioner.weight_of(to_group_id) + shed
        )
        return self._migrate_changed_keys()

    def _migrate_changed_keys(self) -> List[MigrationRecord]:
        """Copy keys whose partitioner owner changed to their new groups.

        Unlike :meth:`_rebalance` (used for whole-group add/remove), the
        source copies are not deleted immediately: each (source, target) pair
        becomes an in-flight :class:`MigrationRecord` whose simulated transfer
        time is charged, and reclamation happens at completion so the router
        can dual-route in the meantime.
        """
        in_flight_by_source: Dict[str, Set[str]] = {}
        for record in self._migrations:
            in_flight_by_source.setdefault(record.source_group, set()).update(record.tokens)
        moves: Dict[Tuple[str, str], List[Tuple[str, Key, object]]] = {}
        group_for_token = self.partitioner.group_for_token
        for group in list(self.groups.values()):
            group_id = group.group_id
            primary = self.nodes[group.primary]
            if not primary.alive:
                continue
            already_moving = in_flight_by_source.get(group_id, set())
            owner_by_token: Dict[str, str] = {}
            for namespace in primary.namespaces():
                for key, value in primary.scan_namespace(namespace):
                    token = str(key[0])  # partition_token(key), inlined
                    owner = owner_by_token.get(token)
                    if owner is None:
                        owner = owner_by_token[token] = group_for_token(token)
                    if owner == group_id:
                        continue
                    if token in already_moving:
                        # This copy is the source side of an in-flight
                        # migration; its reclamation is already scheduled.
                        continue
                    moves.setdefault((group_id, owner), []).append(
                        (namespace, key, value)
                    )
        records = []
        for (source_id, target_id), items in moves.items():
            target_group = self.groups[target_id]
            source_primary_id = self.groups[source_id].primary
            tokens: Set[str] = set()
            for namespace, key, value in items:
                for node_id in target_group.node_ids:
                    node = self.nodes[node_id]
                    if node.alive:
                        node.apply_replica_write(namespace, key, value)
                    else:
                        # A downed target replica must still receive the copy
                        # once it recovers, or the key silently vanishes from
                        # it after source reclamation.
                        self.replication.replicate_to(
                            source_primary_id, node_id, namespace, key, value)
                tokens.add(partition_token(key))
            moved = len(items)
            self._keys_moved_total += moved
            duration = (moved / self.movement_rate_keys_per_sec
                        if self.movement_rate_keys_per_sec > 0 else 0.0)
            try:
                # One bulk-transfer hop between the primaries; if they are
                # partitioned the state copy is still modelled (the migration
                # would simply stall until heal in a real system).
                duration += self.network.delay(self.groups[source_id].primary,
                                               target_group.primary)
            except NetworkPartitionError:
                pass
            record = MigrationRecord(
                migration_id=f"migration-{next(self._migration_counter)}",
                source_group=source_id,
                target_group=target_id,
                tokens=tokens,
                keys_moved=moved,
                start_time=self.sim.now,
                end_time=self.sim.now + duration,
            )
            self._migrations.append(record)
            self._migrations_total += 1
            self._migration_seconds_total += duration
            self.sim.schedule(duration, lambda r=record: self._complete_migration(r),
                              name=f"{record.migration_id}:{source_id}->{target_id}")
            records.append(record)
        return records

    def _complete_migration(self, record: MigrationRecord) -> None:
        """Reclaim the source copies once the simulated transfer has finished.

        Completion is deferred while any target node is down: the bounded
        retry budget of the catch-up deliveries could otherwise expire during
        a long outage, after which reclaiming the source copies would lose
        the keys.  Deferral is safe — the record stays in flight, so the
        router keeps dual-routing and the source keeps serving.
        """
        target = self.groups.get(record.target_group)
        if target is not None and any(
            self.nodes.get(node_id) is None or not self.nodes[node_id].alive
            for node_id in target.node_ids
        ):
            self.sim.schedule(self.MIGRATION_COMPLETION_RETRY,
                              lambda: self._complete_migration(record),
                              name=f"{record.migration_id}:await-target")
            return
        record.completed = True
        if record in self._migrations:
            self._migrations.remove(record)
        source = self.groups.get(record.source_group)
        if source is None:
            return  # the source group was decommissioned mid-flight
        target_nodes = ([self.nodes[n] for n in target.node_ids]
                        if target is not None else [])
        for node_id in source.node_ids:
            node = self.nodes.get(node_id)
            if node is None or not node.alive:
                # A crashed source keeps its stale copies; they are detected
                # and re-moved by the next changed-key sweep after recovery.
                continue
            for namespace in node.namespaces():
                store = node._store(namespace)  # noqa: SLF001 - cluster owns its nodes
                doomed = [
                    key for key, _ in node.scan_namespace(namespace)
                    if partition_token(key) in record.tokens
                    # Ownership may have moved *back* since this migration
                    # started (ping-pong); never reclaim what we now own.
                    and self.partitioner.group_for_key(namespace, key)
                    != record.source_group
                ]
                for key in doomed:
                    # Final refresh before reclaiming: catch-up deliveries
                    # that expired during the window must not lose the
                    # freshest source-side copy (last-write-wins applies).
                    value = store.get(key)
                    if value is not None:
                        for target_node in target_nodes:
                            target_node.apply_replica_write(namespace, key, value)
                    store.delete(key)

    def reconcile_node(self, node_id: str) -> int:
        """Reclaim stale copies on a (typically just-recovered) node.

        A migration source that was down when its transfer completed keeps
        its source-side copies (see :meth:`_complete_migration`); without
        this pass they linger until the next changed-key sweep happens to
        scan the node.  The failure injector calls this on every recovery:
        any key the node's group no longer owns — and that is not the source
        side of a still-in-flight migration, which dual-routing relies on —
        is pushed to the current owner (last-write-wins protects against
        clobbering newer data) and then dropped locally.

        Returns the number of keys reclaimed.
        """
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return 0
        group_id = next((gid for gid, group in self.groups.items()
                         if node_id in group.node_ids), None)
        if group_id is None:
            return 0
        in_flight_tokens = {
            token for record in self._migrations
            if record.source_group == group_id
            for token in record.tokens
        }
        reclaimed = 0
        for namespace in node.namespaces():
            doomed: List[Key] = []
            for key, value in node.scan_namespace(namespace):
                if partition_token(key) in in_flight_tokens:
                    continue
                owner_id = self.partitioner.group_for_key(namespace, key)
                if owner_id == group_id:
                    continue
                owner = self.groups.get(owner_id)
                if owner is not None:
                    for owner_node_id in owner.node_ids:
                        owner_node = self.nodes.get(owner_node_id)
                        if owner_node is not None and owner_node.alive:
                            owner_node.apply_replica_write(namespace, key, value)
                        else:
                            # Deliver with retries once the owner replica
                            # recovers, exactly like migration catch-up.
                            self.replication.replicate_to(
                                node_id, owner_node_id, namespace, key, value)
                doomed.append(key)
            store = node._store(namespace)  # noqa: SLF001 - cluster owns its nodes
            for key in doomed:
                store.delete(key)
            reclaimed += len(doomed)
        self._reconciled_keys_total += reclaimed
        return reclaimed

    def active_migrations(self) -> List[MigrationRecord]:
        """Migrations whose simulated transfer has not finished yet."""
        return list(self._migrations)

    def migrations_for_key(self, namespace: str, key: Key,
                           token: Optional[str] = None) -> List[MigrationRecord]:
        """All in-flight migrations covering ``key``, oldest first.

        More than one record can cover a key when a range is migrated again
        while an earlier transfer is still in flight (A->B then B->C); the
        router must dual-route against every source still holding copies.
        """
        if not self._migrations:
            return []
        if token is None:
            token = partition_token(key)
        return [record for record in self._migrations if token in record.tokens]

    # ---------------------------------------------------------- load tracking

    def attach_load_tracker(self, tracker) -> None:
        """Attach a per-partition load tracker fed by the router's accesses."""
        self._load_tracker = tracker

    def note_access(self, namespace: str, key: Key, is_write: bool,
                    token: Optional[str] = None) -> None:
        """Router hook: record one client access for per-partition load stats."""
        if self._load_tracker is not None:
            if token is None:
                token = partition_token(key)
            self._load_tracker.note(token, is_write, self.sim.now)

    # ----------------------------------------------------------------- routing

    def group_for_key(self, namespace: str, key: Key,
                      token: Optional[str] = None) -> ReplicaGroup:
        """The owning replica group; pass ``token`` (``partition_token(key)``)
        when the caller already has it so the key is converted exactly once
        per request."""
        if token is None:
            token = str(key[0])  # partition_token(key), inlined for the hot path
        return self.groups[self.partitioner.group_for_token(token)]

    def groups_for_range(self, key_range: KeyRange) -> List[ReplicaGroup]:
        return [self.groups[g] for g in self.partitioner.groups_for_range(key_range)]

    # ------------------------------------------------------------------- stats

    def node_count(self) -> int:
        return len(self.nodes)

    def group_count(self) -> int:
        return len(self.groups)

    def total_keys(self) -> int:
        """Live keys counted at owner primaries.

        Replica copies within a group are never counted, and neither are the
        *source-side* copies of in-flight migrations: while a targeted
        migration is dual-routing, the moved keys exist at both the source and
        the target primary, and anything that reads this count (cache sizing,
        storage billing) must see each logical key exactly once.

        While migrations are in flight this scans each source primary once
        per call (token-set membership first, owner lookup only on matches).
        At simulation scale that is cheap; if keyspaces grow to where the
        per-control-window ``stats()`` call hurts, replace the sweep with an
        incremental duplicate count maintained by the dual-write/reclaim
        paths.
        """
        total = sum(self.nodes[g.primary].key_count() for g in self.groups.values())
        if not self._migrations:
            return total
        tokens_by_source: Dict[str, Set[str]] = {}
        for record in self._migrations:
            tokens_by_source.setdefault(record.source_group, set()).update(record.tokens)
        for source_id, tokens in tokens_by_source.items():
            group = self.groups.get(source_id)
            if group is None:
                continue
            primary = self.nodes.get(group.primary)
            if primary is None or not primary.alive:
                # key_count() still reports a dead primary's keys in the main
                # sum, but a dead node cannot be scanned; fall back to the
                # transfer sizes recorded at migration start (approximate if
                # writes landed mid-flight, far closer than not subtracting).
                total -= sum(record.keys_moved for record in self._migrations
                             if record.source_group == source_id)
                continue
            for namespace in primary.namespaces():
                for key, _ in primary.scan_namespace(namespace):
                    if (partition_token(key) in tokens
                            # Ownership can ping-pong back mid-flight; a copy
                            # the source owns again is the live one, not a
                            # duplicate.
                            and self.partitioner.group_for_key(namespace, key)
                            != source_id):
                        total -= 1
        return total

    def decay_load(self) -> None:
        """Let idle nodes' load estimates decay (run periodically)."""
        now = self.sim.now
        for node in self.nodes.values():
            if node.alive:
                node.decay_load(now)

    def stats(self) -> ClusterStats:
        alive = [n for n in self.nodes.values() if n.alive]
        utilisations = [n.utilisation() for n in alive] or [0.0]
        return ClusterStats(
            node_count=len(self.nodes),
            group_count=len(self.groups),
            total_keys=self.total_keys(),
            total_arrival_rate=float(sum(n.arrival_rate() for n in alive)),
            mean_utilisation=float(np.mean(utilisations)),
            max_utilisation=float(np.max(utilisations)),
            total_capacity_ops=float(sum(n.capacity_ops_per_sec for n in alive)),
        )

    @property
    def keys_moved_total(self) -> int:
        """Total keys moved by all rebalances and migrations (data-movement cost)."""
        return self._keys_moved_total

    @property
    def rebalance_count(self) -> int:
        return self._rebalance_count

    @property
    def splits_total(self) -> int:
        return self._splits_total

    @property
    def merges_total(self) -> int:
        return self._merges_total

    @property
    def migrations_total(self) -> int:
        return self._migrations_total

    @property
    def migration_seconds_total(self) -> float:
        """Simulated seconds spent transferring keys in targeted migrations."""
        return self._migration_seconds_total

    @property
    def reconciled_keys_total(self) -> int:
        """Stale copies reclaimed by post-recovery reconciliation passes."""
        return self._reconciled_keys_total
