"""Failure injection: node crashes, network partitions, link congestion.

The arbitration experiment (E9), the durability experiment (E10), and the
availability half of the performance SLA all need controlled faults.  The
injector schedules fault begin/end events on the shared simulator so faults
interleave naturally with the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.sim.network import Partition
from repro.storage.cluster import Cluster


@dataclass
class FaultRecord:
    """One injected fault, for experiment reporting."""

    kind: str
    target: str
    start: float
    end: Optional[float]


class FailureInjector:
    """Schedules faults against a cluster.

    With a :class:`~repro.cloud.market.SpotMarket` attached,
    :meth:`interruption_storm` injects correlated spot revocations — the
    capacity-reclaim analogue of :meth:`zone_outage`.  With a
    :class:`~repro.sim.hosts.ContentionProcess` attached,
    :meth:`host_degradation` injects scripted noisy-neighbor episodes that
    inflate colocated nodes' service times.
    """

    def __init__(self, cluster: Cluster, market=None, contention=None) -> None:
        self._cluster = cluster
        self._sim = cluster.sim
        self._faults: List[FaultRecord] = []
        self._failure_rng = cluster.sim.random.get("failure-injector")
        self._market = market
        self._contention = contention

    def attach_market(self, market) -> None:
        """Enable spot-market faults (:meth:`interruption_storm`)."""
        self._market = market

    def attach_contention(self, contention) -> None:
        """Enable noisy-neighbor faults (:meth:`host_degradation`)."""
        self._contention = contention

    # ------------------------------------------------------------------ crashes

    def crash_node(self, node_id: str, at: float, duration: Optional[float] = None) -> FaultRecord:
        """Crash a node at time ``at``; recover it after ``duration`` if given."""
        if node_id not in self._cluster.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        record = FaultRecord(kind="node-crash", target=node_id, start=at,
                             end=None if duration is None else at + duration)
        self._faults.append(record)

        def go_down() -> None:
            node = self._cluster.nodes.get(node_id)
            if node is not None:
                node.crash()

        def come_back() -> None:
            node = self._cluster.nodes.get(node_id)
            if node is not None:
                node.recover()
                # Reconciliation pass: a recovered migration source reclaims
                # its stale copies now instead of waiting for the next
                # changed-key sweep to happen to scan it.
                self._cluster.reconcile_node(node_id)

        self._sim.schedule_at(at, go_down, name=f"crash:{node_id}")
        if duration is not None:
            self._sim.schedule_at(at + duration, come_back, name=f"recover:{node_id}")
        return record

    def crash_random_nodes(self, count: int, at: float, duration: float) -> FaultRecord:
        """Crash ``count`` random alive nodes simultaneously at time ``at``.

        Victims are chosen when the fault *fires*, not when it is scheduled —
        matching :meth:`zone_outage`, because a real outage hits whatever is
        running at that moment: nodes rented between scheduling and firing
        are eligible, nodes decommissioned in between are not.  When fewer
        than ``count`` nodes are alive at fire time the fault crashes all of
        them (an outage cannot kill machines that do not exist).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        record = FaultRecord(kind="crash-random", target=f"count={count}",
                             start=at, end=at + duration)
        self._faults.append(record)
        downed: List[str] = []

        def go_down() -> None:
            alive = sorted(
                node_id for node_id, node in self._cluster.nodes.items() if node.alive
            )
            take = min(count, len(alive))
            if take == 0:
                return
            chosen = [str(x) for x in
                      self._failure_rng.choice(alive, size=take, replace=False)]
            for node_id in chosen:
                node = self._cluster.nodes.get(node_id)
                if node is not None and node.alive:
                    node.crash()
                    downed.append(node_id)
            record.target = ",".join(sorted(downed))

        def come_back() -> None:
            for node_id in downed:
                node = self._cluster.nodes.get(node_id)
                if node is not None:
                    node.recover()
                    self._cluster.reconcile_node(node_id)

        self._sim.schedule_at(at, go_down, name=f"crash-random:{count}")
        self._sim.schedule_at(at + duration, come_back, name=f"recover-random:{count}")
        return record

    def interruption_storm(self, at: float, duration: float) -> FaultRecord:
        """Correlated spot revocations: a forced capacity drought.

        Every registered spot instance receives an interruption notice at
        ``at`` (two minutes to drain or hibernate), and new spot launches are
        refused until ``at + duration`` — the fleet layer must fall back to
        on-demand capacity for the length of the storm.  Requires an
        attached spot market.
        """
        if self._market is None:
            raise RuntimeError("interruption_storm needs an attached spot market")
        record = FaultRecord(kind="interruption-storm", target="spot-fleet",
                             start=at, end=at + duration)
        self._faults.append(record)
        self._market.interruption_storm(at, duration)
        return record

    def host_degradation(self, at: float, duration: float,
                         intensity: float = 4.0,
                         host_id: str = "host-0") -> FaultRecord:
        """A noisy-neighbor episode: co-tenants degrade one physical host.

        Every node colocated on ``host_id`` serves ``intensity``-times-slower
        base service times from ``at`` until ``at + duration`` — correlated
        interference, not i.i.d. noise, and *service*-side rather than
        queueing, which is what the monitor's contention-vs-capacity
        diagnosis keys on.  The episode is forced onto the contention
        process's schedule (consuming no randomness, like
        :meth:`interruption_storm`'s forced storms) and bookkept with the
        host id and intensity in the fault history.  Requires an attached
        :class:`~repro.sim.hosts.ContentionProcess`
        (``Scads(contention=...)``).
        """
        if self._contention is None:
            raise RuntimeError(
                "host_degradation needs an attached contention process "
                "(construct the engine with contention=... )")
        record = FaultRecord(
            kind="host-degradation",
            target=f"{host_id} x{intensity:g}",
            start=at, end=at + duration)
        self._faults.append(record)
        self._contention.force_episode(host_id, at, duration, intensity)
        return record

    def zone_outage(self, at: float, duration: float,
                    zone_index: int = 1) -> FaultRecord:
        """Take down one "availability zone": the ``zone_index``-th member of
        every replica group, simultaneously, for ``duration`` seconds.

        Models a regional failure under the common zone-spread placement
        (each group stripes its replicas across zones, so a zone loss costs
        every group one member at once).  Membership is resolved when the
        fault *fires*, not when it is scheduled — groups rented between now
        and then lose their member too, which is what a real zone outage
        does.  ``zone_index >= 1`` spares the primaries (index 0): the outage
        drains read capacity and forces replica failover without also
        severing the write path, which is a different experiment
        (:meth:`partition_groups`).
        """
        if zone_index < 0:
            raise ValueError("zone_index must be non-negative")
        record = FaultRecord(kind="zone-outage", target=f"zone-{zone_index}",
                             start=at, end=at + duration)
        self._faults.append(record)
        downed: List[str] = []

        def go_down() -> None:
            for group in self._cluster.groups.values():
                if zone_index >= len(group.node_ids):
                    continue
                node = self._cluster.nodes.get(group.node_ids[zone_index])
                if node is not None and node.alive:
                    node.crash()
                    downed.append(node.node_id)

        def come_back() -> None:
            for node_id in downed:
                node = self._cluster.nodes.get(node_id)
                if node is not None:
                    node.recover()
                    self._cluster.reconcile_node(node_id)

        self._sim.schedule_at(at, go_down, name=f"zone-outage:{zone_index}")
        self._sim.schedule_at(at + duration, come_back,
                              name=f"zone-recover:{zone_index}")
        return record

    # --------------------------------------------------------------- partitions

    def partition_groups(
        self,
        group_ids_a: Set[str],
        group_ids_b: Set[str],
        at: float,
        duration: Optional[float] = None,
        isolate_clients_from: str = "b",
    ) -> FaultRecord:
        """Partition the nodes of two sets of replica groups from each other.

        ``isolate_clients_from`` chooses which side also loses client
        connectivity ("a", "b", or "none"), modelling the paper's
        disconnected-datacenter scenario where clients can reach only one side.
        """
        nodes_a = {nid for gid in group_ids_a for nid in self._cluster.groups[gid].node_ids}
        nodes_b = {nid for gid in group_ids_b for nid in self._cluster.groups[gid].node_ids}
        # The client endpoint joins the side it can still reach, so it is cut
        # off from the side named by ``isolate_clients_from``.
        if isolate_clients_from == "a":
            nodes_b = nodes_b | {"client"}
        elif isolate_clients_from == "b":
            nodes_a = nodes_a | {"client"}
        elif isolate_clients_from != "none":
            raise ValueError("isolate_clients_from must be 'a', 'b', or 'none'")
        record = FaultRecord(
            kind="partition",
            target=f"{sorted(group_ids_a)}|{sorted(group_ids_b)}",
            start=at,
            end=None if duration is None else at + duration,
        )
        self._faults.append(record)
        state: Dict[str, Optional[Partition]] = {"partition": None}

        def install() -> None:
            state["partition"] = self._cluster.network.partition(nodes_a, nodes_b)

        def heal() -> None:
            if state["partition"] is not None:
                self._cluster.network.heal(state["partition"])

        self._sim.schedule_at(at, install, name="partition")
        if duration is not None:
            self._sim.schedule_at(at + duration, heal, name="heal-partition")
        return record

    # --------------------------------------------------------------- congestion

    def congest_link(self, src: str, dst: str, factor: float, at: float,
                     duration: Optional[float] = None) -> FaultRecord:
        """Multiply delays on one link by ``factor`` for ``duration`` seconds."""
        record = FaultRecord(kind="congestion", target=f"{src}->{dst}", start=at,
                             end=None if duration is None else at + duration)
        self._faults.append(record)

        def begin() -> None:
            self._cluster.network.set_congestion(src, dst, factor)

        def clear() -> None:
            self._cluster.network.set_congestion(src, dst, 1.0)

        self._sim.schedule_at(at, begin, name="congest")
        if duration is not None:
            self._sim.schedule_at(at + duration, clear, name="uncongest")
        return record

    # ---------------------------------------------------------------- reporting

    def faults(self) -> List[FaultRecord]:
        """Every fault injected so far, in injection order."""
        return list(self._faults)
