"""Partitioners: map keys (and bounded key ranges) to replica groups.

SCADS queries are prefix-range lookups keyed by a partition key (typically a
user id), so both partitioners guarantee that such a range lands on exactly
one replica group — the paper's "at most one read from a small constant
number of computers" property.  Two strategies are provided:

* :class:`ConsistentHashPartitioner` — a hash ring with *weighted* virtual
  nodes; adding or removing a replica group moves roughly ``1/n`` of the data,
  and shifting weight between groups moves only the hash ranges covered by the
  added/removed virtual nodes, which is what makes fine-grained elastic
  scaling cheap.
* :class:`RangePartitioner` — explicit split points over the partition key,
  closer to how BigTable/HBase shard; useful when key locality matters and as
  a comparison point in the data-movement ablation.  Supports incremental
  topology changes (:meth:`~RangePartitioner.split_at`,
  :meth:`~RangePartitioner.merge_at`, :meth:`~RangePartitioner.reassign`) so
  the hot-partition rebalancer can repair skew without a whole-ring reshuffle.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.storage.records import Key, KeyRange, key_part_successor


class PartitionerError(RuntimeError):
    """Raised for invalid partitioner configurations or unroutable requests."""


def partition_token(key: Key) -> str:
    """The partition key: the first component of the storage key, as a string."""
    return str(key[0])


def _hash64(value: str) -> int:
    """Stable 64-bit hash used for ring placement (md5 is stable across runs)."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class PartitionInfo:
    """One contiguous token range and the replica group that owns it.

    ``lower`` is the inclusive lower bound (``""`` means unbounded below) and
    ``upper`` is the exclusive upper bound (``None`` means unbounded above).
    """

    index: int
    lower: str
    upper: Optional[str]
    owner: str

    def contains_token(self, token: str) -> bool:
        if token < self.lower:
            return False
        return self.upper is None or token < self.upper


class Partitioner:
    """Interface shared by the partitioning strategies.

    Both strategies memoize token → group routing behind a *topology epoch*:
    every operation that can change ownership bumps the epoch and drops the
    memo, so steady-state routing is a dict hit (no md5, no bisect) while
    topology changes are never served stale.  The memo is capped (cleared
    wholesale when it exceeds ``ROUTE_CACHE_MAX`` tokens) so unbounded
    keyspaces cannot grow it without limit.
    """

    ROUTE_CACHE_MAX = 1 << 20

    def __init__(self) -> None:
        self._epoch = 0
        self._route_cache: Dict[str, str] = {}

    @property
    def topology_epoch(self) -> int:
        """Bumped on every ownership-changing operation (memo invalidation)."""
        return self._epoch

    def _bump_epoch(self) -> None:
        self._epoch += 1
        self._route_cache.clear()

    def _route_token(self, token: str) -> str:
        """Uncached token → group resolution (strategy-specific)."""
        raise NotImplementedError

    def group_for_token(self, token: str) -> str:
        """The group owning an arbitrary partition token (memoized)."""
        cache = self._route_cache
        group = cache.get(token)
        if group is None:
            group = self._route_token(token)
            if len(cache) >= self.ROUTE_CACHE_MAX:
                cache.clear()
            cache[token] = group
        return group

    def groups(self) -> List[str]:
        """All replica-group ids currently receiving data."""
        raise NotImplementedError

    def group_for_key(self, namespace: str, key: Key) -> str:
        """The replica group responsible for ``key``."""
        return self.group_for_token(str(key[0]))

    def groups_for_range(self, key_range: KeyRange) -> List[str]:
        """The replica groups a bounded range read must contact."""
        raise NotImplementedError

    def add_group(self, group_id: str) -> None:
        """Register a new replica group so future routing can use it."""
        raise NotImplementedError

    def remove_group(self, group_id: str) -> None:
        """Deregister a replica group (its data must be moved first)."""
        raise NotImplementedError


class ConsistentHashPartitioner(Partitioner):
    """Consistent hashing over partition tokens with weighted virtual nodes.

    Each group places ``round(virtual_nodes * weight)`` points on the ring.
    Changing a group's weight adds or removes only that group's points, so the
    set of tokens whose owner changes is proportional to the weight delta —
    the incremental topology change the hot-partition rebalancer relies on.
    """

    def __init__(self, group_ids: Sequence[str] = (), virtual_nodes: int = 64) -> None:
        super().__init__()
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {virtual_nodes}")
        self._virtual_nodes = virtual_nodes
        self._ring: List[int] = []
        self._ring_owners: Dict[int, str] = {}
        self._groups: List[str] = []
        self._weights: Dict[str, float] = {}
        # Ring points each group actually owns, in vnode-index order, so
        # weight reductions can retire the most recently placed points first.
        self._points: Dict[str, List[int]] = {}
        for group_id in group_ids:
            self.add_group(group_id)

    def groups(self) -> List[str]:
        return list(self._groups)

    def add_group(self, group_id: str, weight: float = 1.0) -> None:
        if group_id in self._groups:
            raise PartitionerError(f"group {group_id!r} already registered")
        if weight <= 0:
            raise PartitionerError(f"group weight must be positive, got {weight}")
        self._groups.append(group_id)
        self._weights[group_id] = weight
        self._points[group_id] = []
        self._add_vnodes(group_id, self._target_vnodes(weight))
        self._bump_epoch()

    def remove_group(self, group_id: str) -> None:
        if group_id not in self._groups:
            raise PartitionerError(f"group {group_id!r} is not registered")
        if len(self._groups) == 1:
            raise PartitionerError("cannot remove the last replica group")
        self._groups.remove(group_id)
        del self._weights[group_id]
        for point in self._points.pop(group_id):
            del self._ring_owners[point]
            index = bisect.bisect_left(self._ring, point)
            self._ring.pop(index)
        self._bump_epoch()

    # ------------------------------------------------------------ weighted vnodes

    def weight_of(self, group_id: str) -> float:
        if group_id not in self._groups:
            raise PartitionerError(f"group {group_id!r} is not registered")
        return self._weights[group_id]

    def set_weight(self, group_id: str, weight: float) -> int:
        """Change a group's ring weight; returns the vnode count delta.

        Only the ring points added or removed change token ownership, so the
        data movement a weight change implies is incremental, not a reshuffle.
        """
        if group_id not in self._groups:
            raise PartitionerError(f"group {group_id!r} is not registered")
        if weight <= 0:
            raise PartitionerError(f"group weight must be positive, got {weight}")
        target = self._target_vnodes(weight)
        current = len(self._points[group_id])
        self._weights[group_id] = weight
        if target > current:
            self._add_vnodes(group_id, target)
        elif target < current:
            self._remove_vnodes(group_id, target)
        if target != current:
            self._bump_epoch()
        return target - current

    def _target_vnodes(self, weight: float) -> int:
        return max(1, int(round(self._virtual_nodes * weight)))

    def _add_vnodes(self, group_id: str, target: int) -> None:
        points = self._points[group_id]
        index = len(points)
        while len(points) < target:
            point = _hash64(f"{group_id}#{index}")
            index += 1
            # Hash collisions between distinct vnode labels are effectively
            # impossible with a 64-bit space, but keep ownership deterministic
            # if one ever occurred by preferring the existing owner.
            if point in self._ring_owners:
                continue
            bisect.insort(self._ring, point)
            self._ring_owners[point] = group_id
            points.append(point)

    def _remove_vnodes(self, group_id: str, target: int) -> None:
        points = self._points[group_id]
        while len(points) > target:
            point = points.pop()
            del self._ring_owners[point]
            index = bisect.bisect_left(self._ring, point)
            self._ring.pop(index)

    def _route_token(self, token: str) -> str:
        if not self._ring:
            raise PartitionerError("no replica groups registered")
        point = _hash64(token)
        index = bisect.bisect_right(self._ring, point)
        if index == len(self._ring):
            index = 0
        return self._ring_owners[self._ring[index]]

    def groups_for_range(self, key_range: KeyRange) -> List[str]:
        if key_range.start is None or key_range.end is None:
            # Unbounded scans touch everything; only admin tooling does this.
            return self.groups()
        if _single_partition_range(key_range):
            return [self.group_for_token(partition_token(key_range.start))]
        # A range spanning partition tokens hashes unpredictably; contact all.
        return self.groups()


def _single_partition_range(key_range: KeyRange) -> bool:
    """True when every key in the range shares the first key component.

    This holds both for multi-component prefix ranges (start and end keep the
    same first component) and for single-component prefix ranges, whose end is
    the immediate successor of the start component (so no other first
    component can fall strictly inside the range).
    """
    assert key_range.start is not None and key_range.end is not None
    start, end = key_range.start, key_range.end
    if start[0] == end[0]:
        return True
    return len(end) == 1 and end[0] == key_part_successor(start[0])


class RangePartitioner(Partitioner):
    """Explicit split points over the partition token (string ordering)."""

    def __init__(self, group_ids: Sequence[str]) -> None:
        super().__init__()
        if not group_ids:
            raise PartitionerError("range partitioner needs at least one group")
        self._groups: List[str] = list(group_ids)
        # Splits are the lower bounds of each partition, first one implicit "".
        self._splits: List[str] = [""]
        self._owners: List[str] = [self._groups[0]]
        if len(self._groups) > 1:
            self.rebalance_evenly([])

    def groups(self) -> List[str]:
        return list(self._groups)

    def add_group(self, group_id: str) -> None:
        if group_id in self._groups:
            raise PartitionerError(f"group {group_id!r} already registered")
        self._groups.append(group_id)
        self._bump_epoch()

    def remove_group(self, group_id: str) -> None:
        if group_id not in self._groups:
            raise PartitionerError(f"group {group_id!r} is not registered")
        if len(self._groups) == 1:
            raise PartitionerError("cannot remove the last replica group")
        self._groups.remove(group_id)
        fallback = self._groups[0]
        self._owners = [fallback if owner == group_id else owner for owner in self._owners]
        self._bump_epoch()

    def set_splits(self, splits: Sequence[str], owners: Sequence[str]) -> None:
        """Install explicit split points; ``splits[i]`` is the lower bound of partition i."""
        if len(splits) != len(owners):
            raise PartitionerError("splits and owners must have the same length")
        if not splits or splits[0] != "":
            raise PartitionerError('the first split must be "" (unbounded below)')
        if list(splits) != sorted(splits):
            raise PartitionerError("splits must be sorted")
        unknown = set(owners) - set(self._groups)
        if unknown:
            raise PartitionerError(f"owners reference unregistered groups: {sorted(unknown)}")
        self._splits = list(splits)
        self._owners = list(owners)
        self._bump_epoch()

    def rebalance_evenly(self, sample_tokens: Sequence[str]) -> None:
        """Choose split points that spread sampled tokens evenly over groups."""
        groups = self._groups
        self._bump_epoch()
        if len(groups) == 1 or not sample_tokens:
            self._splits = [""]
            self._owners = [groups[0]]
            if len(groups) > 1:
                # Without samples, fall back to even unicode-prefix splits.
                self._splits = [""] + [chr(ord("0") + i) for i in range(1, len(groups))]
                self._owners = list(groups)
            return
        ordered = sorted(set(sample_tokens))
        per_group = max(len(ordered) // len(groups), 1)
        splits = [""]
        for i in range(1, len(groups)):
            index = min(i * per_group, len(ordered) - 1)
            splits.append(ordered[index])
        # De-duplicate while preserving order (few distinct samples case).
        seen = set()
        unique_splits = []
        for split in splits:
            if split not in seen:
                unique_splits.append(split)
                seen.add(split)
        self._splits = unique_splits
        self._owners = list(groups[: len(unique_splits)])

    # ----------------------------------------------------- incremental topology

    def partitions(self) -> List[PartitionInfo]:
        """Every contiguous token range and its owner, in token order."""
        infos = []
        for index, lower in enumerate(self._splits):
            upper = self._splits[index + 1] if index + 1 < len(self._splits) else None
            infos.append(PartitionInfo(index=index, lower=lower, upper=upper,
                                       owner=self._owners[index]))
        return infos

    def partition_for_token(self, token: str) -> PartitionInfo:
        """The partition whose range contains ``token``."""
        index = bisect.bisect_right(self._splits, token) - 1
        upper = self._splits[index + 1] if index + 1 < len(self._splits) else None
        return PartitionInfo(index=index, lower=self._splits[index], upper=upper,
                             owner=self._owners[index])

    def split_at(self, token: str) -> PartitionInfo:
        """Split the partition containing ``token`` at ``token``.

        The new right-hand partition keeps the old owner, so a split by itself
        moves no data — it only creates a migratable unit.
        """
        if not token:
            raise PartitionerError('cannot split at ""; it is already the first bound')
        if token in self._splits:
            raise PartitionerError(f"{token!r} is already a split point")
        index = bisect.bisect_right(self._splits, token) - 1
        owner = self._owners[index]
        self._splits.insert(index + 1, token)
        self._owners.insert(index + 1, owner)
        self._bump_epoch()
        return self.partition_for_token(token)

    def merge_at(self, index: int) -> PartitionInfo:
        """Merge partition ``index`` with its right neighbour (same owner only).

        Merging differently-owned partitions would silently reassign data;
        callers must :meth:`reassign` (and move the keys) first.
        """
        if index < 0 or index >= len(self._splits) - 1:
            raise PartitionerError(f"partition {index} has no right neighbour to merge")
        if self._owners[index] != self._owners[index + 1]:
            raise PartitionerError(
                f"partitions {index} and {index + 1} have different owners "
                f"({self._owners[index]!r} vs {self._owners[index + 1]!r}); "
                "reassign before merging"
            )
        self._splits.pop(index + 1)
        self._owners.pop(index + 1)
        self._bump_epoch()
        return self.partitions()[index]

    def reassign(self, index: int, new_owner: str) -> PartitionInfo:
        """Hand partition ``index`` to ``new_owner`` (its keys must be moved)."""
        if index < 0 or index >= len(self._splits):
            raise PartitionerError(f"no partition with index {index}")
        if new_owner not in self._groups:
            raise PartitionerError(f"group {new_owner!r} is not registered")
        self._owners[index] = new_owner
        self._bump_epoch()
        return self.partitions()[index]

    # ------------------------------------------------------------------- routing

    def _route_token(self, token: str) -> str:
        index = bisect.bisect_right(self._splits, token) - 1
        return self._owners[index]

    def groups_for_range(self, key_range: KeyRange) -> List[str]:
        if key_range.start is None or key_range.end is None:
            return sorted(set(self._owners))
        start_token = partition_token(key_range.start)
        end_token = partition_token(key_range.end)
        start_index = bisect.bisect_right(self._splits, start_token) - 1
        end_index = bisect.bisect_right(self._splits, end_token) - 1
        owners = []
        for index in range(start_index, end_index + 1):
            owner = self._owners[index]
            if owner not in owners:
                owners.append(owner)
        return owners
