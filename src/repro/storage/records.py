"""Record, version, and key-range types shared across the storage substrate.

Keys are tuples of comparable primitives (strings, ints, floats).  Tuple keys
give us composite index keys for free — e.g. a birthday index entry keyed by
``(user_id, birthday, friend_id)`` — and Python's tuple ordering provides the
contiguous-range semantics the SCADS query model requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

KeyPart = Union[str, int, float]
Key = Tuple[KeyPart, ...]


def validate_key(key: Key) -> Key:
    """Check that a key is a non-empty tuple of comparable primitives."""
    if not isinstance(key, tuple):
        raise TypeError(f"keys must be tuples, got {type(key).__name__}: {key!r}")
    if not key:
        raise ValueError("keys must not be empty")
    for part in key:
        if not isinstance(part, (str, int, float)) or isinstance(part, bool):
            raise TypeError(
                f"key parts must be str, int, or float, got {type(part).__name__}: {part!r}"
            )
    return key


@dataclass(frozen=True)
class VersionedValue:
    """A value plus the metadata needed for conflict resolution and staleness.

    Attributes:
        value: the stored payload (a field dict for entities, a pointer for
            index entries).
        timestamp: simulated wall-clock time of the originating write; this is
            what last-write-wins compares and what staleness is measured from.
        writer: identifier of the client session that performed the write,
            used for read-your-own-writes checks.
        version: monotonically increasing per-key version at the primary.
        tombstone: True when the record has been deleted.
    """

    value: Any
    timestamp: float
    writer: str = ""
    version: int = 0
    tombstone: bool = False

    def wins_over(self, other: Optional["VersionedValue"]) -> bool:
        """Last-write-wins comparison; ties are broken by version then writer."""
        if other is None:
            return True
        if self.timestamp != other.timestamp:
            return self.timestamp > other.timestamp
        if self.version != other.version:
            return self.version > other.version
        return self.writer >= other.writer


@dataclass(frozen=True)
class Record:
    """A (namespace, key, versioned value) triple — the unit of storage."""

    namespace: str
    key: Key
    versioned: VersionedValue

    @property
    def value(self) -> Any:
        return self.versioned.value

    @property
    def timestamp(self) -> float:
        return self.versioned.timestamp


@dataclass(frozen=True)
class KeyRange:
    """A half-open, contiguous range of keys ``[start, end)`` in one namespace.

    ``start=None`` means unbounded below; ``end=None`` unbounded above.  Key
    ranges are the unit of partitioning, data movement, and — per the paper's
    query restriction — the only thing a query is allowed to read.
    """

    namespace: str
    start: Optional[Key] = None
    end: Optional[Key] = None

    def contains(self, key: Key) -> bool:
        """True if ``key`` lies within the range."""
        if self.start is not None and key < self.start:
            return False
        if self.end is not None and key >= self.end:
            return False
        return True

    def overlaps(self, other: "KeyRange") -> bool:
        """True if the two ranges share any keys (same namespace required)."""
        if self.namespace != other.namespace:
            return False
        if self.end is not None and other.start is not None and self.end <= other.start:
            return False
        if other.end is not None and self.start is not None and other.end <= self.start:
            return False
        return True

    def is_unbounded(self) -> bool:
        """True if either end of the range is open."""
        return self.start is None or self.end is None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lo = "-inf" if self.start is None else repr(self.start)
        hi = "+inf" if self.end is None else repr(self.end)
        return f"{self.namespace}[{lo}, {hi})"


def prefix_range(namespace: str, prefix: Key) -> KeyRange:
    """The range of all keys that start with ``prefix``.

    This is how "all index entries for user U" becomes a bounded contiguous
    range: the successor of the prefix is the prefix with an infinitesimally
    larger last element, which tuple ordering gives us by appending a
    sentinel that sorts after every legal key part.
    """
    validate_key(prefix)
    # Tuples compare element-wise and shorter-is-smaller on ties, so every key
    # whose leading components equal `prefix` sorts at or after `prefix` and
    # strictly before the range end formed by replacing the last prefix
    # component with its immediate successor.
    return KeyRange(
        namespace=namespace,
        start=prefix,
        end=prefix[:-1] + (_successor(prefix[-1]),),
    )


def key_part_successor(part: KeyPart) -> KeyPart:
    """Public alias for :func:`_successor`, used by the query executor to turn
    inclusive upper bounds into exclusive range ends."""
    return _successor(part)


def _successor(part: KeyPart) -> KeyPart:
    """The smallest key part strictly greater than ``part`` itself.

    For strings this appends NUL (the immediate next string in lexicographic
    order), so keys whose component merely *starts with* the prefix string
    (e.g. ``"abcd"`` vs prefix ``"abc"``) are correctly excluded.
    """
    if isinstance(part, bool):  # pragma: no cover - rejected by validate_key
        raise TypeError("boolean key parts are not supported")
    if isinstance(part, str):
        return part + "\x00"
    if isinstance(part, int):
        return part + 1
    import math

    return math.nextafter(float(part), math.inf)
