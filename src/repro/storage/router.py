"""Request router: the storage substrate's client-facing read/write path.

The router translates logical operations (get, put, bounded range read) into
node interactions: it consults the partitioner, picks a replica, adds network
hops and node service time, performs asynchronous or quorum replication, and
reports per-request latency and success.  Session guarantees and consistency
policy live one layer up (``repro.core.consistency``); the router only offers
the mechanisms they need (read-from-primary, quorum writes, version metadata).

When a targeted migration is in flight for a key (see
``repro.storage.cluster.MigrationRecord``), requests against it are
*dual-routed* instead of dropped: reads prefer the new owner but fall back to
the source group (which keeps its copies until the migration completes), and
writes land at the new owner and are mirrored to the source so fallback reads
never serve a value older than the migration cut-over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.network import NetworkPartitionError
from repro.storage.cluster import Cluster
from repro.storage.node import NodeDownError
from repro.storage.records import Key, KeyRange, VersionedValue
from repro.storage.replication import ReplicaGroup

CLIENT_ENDPOINT = "client"


@dataclass(slots=True)
class RequestResult:
    """Outcome of one routed request.

    ``rows`` defaults to a shared empty tuple: one result is allocated per
    routed request, and only range reads carry rows, so point ops skip the
    per-result list allocation.
    """

    success: bool
    latency: float
    value: Optional[VersionedValue] = None
    rows: Sequence[Tuple[Key, VersionedValue]] = ()
    node_id: Optional[str] = None
    error: Optional[str] = None


class Router:
    """Routes client operations onto the simulated cluster."""

    # How many replica-choice indices to pre-draw per group size.
    CHOICE_BLOCK = 1024

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._sim = cluster.sim
        # The cluster's node map, network, partitioner, group map, and
        # migration list are stable objects (mutated in place, never
        # replaced); direct references skip an attribute chase — or a whole
        # delegating call — on every routed request.
        self._nodes = cluster.nodes
        self._network = cluster.network
        self._partitioner = cluster.partitioner
        self._groups = cluster.groups
        self._migrations = cluster._migrations  # noqa: SLF001 - same subsystem
        self._read_rng = cluster.sim.random.get("router:replica-choice")
        self._ops = {"read": 0, "write": 0, "range": 0, "failed": 0}
        # group_id -> (node_ids list object, rotations) — see _read_candidates.
        self._rotation_cache: Dict[str, Tuple[List[str], Tuple[Tuple[str, ...], ...]]] = {}
        # group size -> [pre-drawn index block, cursor] for replica choice.
        self._choice_pools: Dict[int, list] = {}
        # Observability: None (the default) keeps tracing fully off the hot
        # path — the per-op cost of disabled tracing is one attribute load.
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach an ``obs.Tracer``; spans are recorded only while it has an
        open trace (it samples deterministically, consuming no randomness)."""
        self._tracer = tracer

    # ------------------------------------------------------------------ writes

    def write(
        self,
        namespace: str,
        key: Key,
        payload: Any,
        writer: str = "",
        write_quorum: int = 1,
        propagation_delay_override: Optional[float] = None,
        tombstone: bool = False,
    ) -> RequestResult:
        """Write ``payload`` under ``key``.

        ``write_quorum=1`` is the default lazy path: the primary acknowledges
        and replication is asynchronous.  A larger quorum waits for that many
        replicas synchronously (serializable / Dynamo-style writes).
        """
        now = self._sim.now
        token = str(key[0])  # partition_token(key), inlined for the hot path
        group = self._groups[self._partitioner.group_for_token(token)]
        cluster = self._cluster
        if cluster._load_tracker is not None:  # noqa: SLF001 - router feeds it
            cluster.note_access(namespace, key, is_write=True, token=token)
        in_flight = self._migrations
        migrations = ([record for record in in_flight if token in record.tokens]
                      if in_flight else ())
        primary = self._nodes[group.primary]
        self._ops["write"] += 1
        try:
            client_hop = self._network.delay(CLIENT_ENDPOINT, group.primary)
        except NetworkPartitionError:
            self._ops["failed"] += 1
            return RequestResult(success=False, latency=0.0, error="client partitioned from primary")
        current = self._safe_peek(primary, namespace, key)
        version = (current.version + 1) if current is not None else 1
        versioned = VersionedValue(
            value=payload,
            timestamp=now,
            writer=writer,
            version=version,
            tombstone=tombstone,
        )
        tracer = self._tracer
        traced = tracer is not None and tracer.active
        try:
            service = primary.put(namespace, key, versioned, now)
        except NodeDownError:
            fallback = self._migration_write_fallback(
                migrations, group, namespace, key, versioned, now)
            if fallback is not None:
                if traced:
                    # The fallback's hop/service split is internal to it;
                    # one timed dual_route span keeps the trace reconciled.
                    tracer.add("dual_route", fallback.latency,
                               detail="write accepted at migration source")
                return fallback
            self._ops["failed"] += 1
            if traced:
                tracer.add("network", client_hop, detail="primary down")
            return RequestResult(success=False, latency=client_hop, error="primary down",
                                 node_id=group.primary)

        if traced:
            queue_wait, base_service = primary.split_service(service)
            tracer.add("network", 2.0 * client_hop, detail=group.primary)
            tracer.add("queue", queue_wait)
            tracer.add("service", base_service)
            if migrations:
                tracer.add("dual_route", 0.0, detail="write mirrored to migration source")
        latency = 2.0 * client_hop + service
        if write_quorum > 1:
            acks, sync_latency = self._cluster.replication.synchronous_write(
                group, namespace, key, versioned, write_quorum, now
            )
            latency += sync_latency
            if traced:
                tracer.add("replication_ack", sync_latency,
                           detail=f"{acks}/{write_quorum} acks")
            if acks < write_quorum:
                self._ops["failed"] += 1
                return RequestResult(
                    success=False,
                    latency=latency,
                    node_id=group.primary,
                    error=f"only {acks}/{write_quorum} write acks",
                )
            # Remaining replicas still receive the write lazily.
        self._cluster.replication.propagate(
            group, namespace, key, versioned, delay_override=propagation_delay_override
        )
        self._mirror_to_migration_sources(migrations, group, namespace, key, versioned)
        return RequestResult(success=True, latency=latency, value=versioned,
                             node_id=group.primary)

    def delete(self, namespace: str, key: Key, writer: str = "") -> RequestResult:
        """Delete a key (tombstone write so the deletion replicates)."""
        return self.write(namespace, key, payload=None, writer=writer, tombstone=True)

    # ------------------------------------------------------------------- reads

    def read(
        self,
        namespace: str,
        key: Key,
        from_primary: bool = False,
        read_quorum: int = 1,
    ) -> RequestResult:
        """Point read.

        ``from_primary`` forces the read to the primary (used to honour
        read-your-writes when a replica is behind).  ``read_quorum > 1`` reads
        that many replicas and returns the newest version (Dynamo-style R).
        """
        now = self._sim.now
        token = str(key[0])  # partition_token(key), inlined for the hot path
        group = self._groups[self._partitioner.group_for_token(token)]
        cluster = self._cluster
        if cluster._load_tracker is not None:  # noqa: SLF001 - router feeds it
            cluster.note_access(namespace, key, is_write=False, token=token)
        self._ops["read"] += 1
        if read_quorum > 1:
            return self._quorum_read(group, namespace, key, read_quorum, now)
        candidates = (group.primary,) if from_primary else self._read_candidates(group)
        # Dual-route: every migration source still holding in-flight copies
        # backstops the new owner, newest cut-over first (chained migrations
        # can leave several sources with copies of the same key).
        in_flight = self._migrations
        if in_flight:
            migrations = [record for record in in_flight if token in record.tokens]
            for source in self._migration_source_groups(migrations, group):
                candidates = candidates + (
                    (source.primary,) if from_primary else self._read_candidates(source)
                )
        last_error = "no replica available"
        for node_id in candidates:
            node = self._nodes.get(node_id)
            if node is None or not node.alive:
                last_error = f"node {node_id} down"
                continue
            if node.draining:
                last_error = f"node {node_id} draining"
                continue
            try:
                hop = self._network.delay(CLIENT_ENDPOINT, node_id)
                value, service = node.get(namespace, key, now)
            except NetworkPartitionError:
                last_error = f"client partitioned from {node_id}"
                continue
            except NodeDownError:
                last_error = f"node {node_id} down"
                continue
            tracer = self._tracer
            if tracer is not None and tracer.active:
                queue_wait, base_service = node.split_service(service)
                tracer.add("network", 2.0 * hop, detail=node_id)
                tracer.add("queue", queue_wait)
                tracer.add("service", base_service)
                if node_id not in group.node_ids:
                    tracer.add("dual_route", 0.0,
                               detail="served by migration source replica")
            return RequestResult(success=True, latency=2.0 * hop + service,
                                 value=value, node_id=node_id)
        self._ops["failed"] += 1
        return RequestResult(success=False, latency=0.0, error=last_error)

    def read_many(self, namespace: str, keys: Sequence[Key]) -> Dict[Key, RequestResult]:
        """Batched point reads: one storage request per replica group.

        The query layer dereferences a bounded list of index entries; issuing
        them as per-group multigets matches the paper's parallel bounded
        lookup and charges each node one request per batch instead of one per
        key — without it, every query amplifies into ~``limit`` independent
        node requests and a handful of nodes can saturate a cluster whose
        per-key demand is modest.  Groups are contacted in parallel (client
        waits for the slowest batch).  Keys under an in-flight migration, and
        any batch with no live replica, fall back to the dual-routed
        single-key path.
        """
        now = self._sim.now
        cluster = self._cluster
        track = cluster._load_tracker is not None  # noqa: SLF001 - router feeds it
        in_flight = self._migrations
        results: Dict[Key, RequestResult] = {}
        by_group: Dict[str, List[Key]] = {}
        for key in keys:
            if key in results or any(key in batch for batch in by_group.values()):
                continue  # duplicate within the batch: one fetch serves both
            token = str(key[0])  # partition_token(key), inlined for the hot path
            if in_flight and any(token in record.tokens for record in in_flight):
                results[key] = self.read(namespace, key)
                continue
            by_group.setdefault(self._partitioner.group_for_token(token), []).append(key)
        for group_id, group_keys in by_group.items():
            group = self._groups[group_id]
            self._ops["read"] += 1
            served = False
            for node_id in self._read_candidates(group):
                node = self._nodes.get(node_id)
                if node is None or not node.alive or node.draining:
                    continue
                try:
                    hop = self._network.delay(CLIENT_ENDPOINT, node_id)
                    values, service = node.multi_get(namespace, group_keys, now)
                except (NetworkPartitionError, NodeDownError):
                    continue
                latency = 2.0 * hop + service
                tracer = self._tracer
                if tracer is not None and tracer.active:
                    # Batches run in parallel; the query layer composes them
                    # by max and replaces these with one aggregate span.
                    tracer.add("multiget", latency,
                               detail=f"group={group_id} keys={len(group_keys)} via {node_id}")
                for key in group_keys:
                    results[key] = RequestResult(success=True, latency=latency,
                                                 value=values.get(key), node_id=node_id)
                    if track:
                        cluster.note_access(namespace, key, is_write=False,
                                            token=str(key[0]))
                served = True
                break
            if not served:
                # No live replica took the batch; the single-key path knows
                # the migration fallbacks and error shapes.
                for key in group_keys:
                    results[key] = self.read(namespace, key)
        return results

    def read_range(
        self,
        key_range: KeyRange,
        limit: Optional[int] = None,
        from_primary: bool = False,
        reverse: bool = False,
    ) -> RequestResult:
        """Bounded contiguous range read — the only scan the query layer issues."""
        now = self._sim.now
        groups = self._cluster.groups_for_range(key_range)
        self._ops["range"] += 1
        all_rows: List[Tuple[Key, VersionedValue]] = []
        total_latency = 0.0
        contacted = 0
        tracer = self._tracer
        traced = tracer is not None and tracer.active
        # Groups fan out in parallel and the client waits for the slowest, so
        # only the winning group's spans stay on-path: everything recorded
        # after this mark is demoted and the winner's slice re-promoted.
        fanout_mark = tracer.mark() if traced else 0
        winner_spans = (0, 0)
        for group in groups:
            candidates = (group.primary,) if from_primary else self._read_candidates(group)
            served = False
            for node_id in candidates:
                node = self._nodes.get(node_id)
                if node is None or not node.alive or node.draining:
                    continue
                try:
                    hop = self._network.delay(CLIENT_ENDPOINT, node_id)
                    rows, service = node.get_range(key_range, now, limit, reverse)
                except (NetworkPartitionError, NodeDownError):
                    continue
                group_mark = tracer.mark() if traced else 0
                if traced:
                    queue_wait, base_service = node.split_service(service)
                    tracer.add("network", 2.0 * hop,
                               detail=f"group={group.group_id} via {node_id}")
                    tracer.add("queue", queue_wait)
                    tracer.add("service", base_service)
                all_rows.extend(rows)
                # Multi-group ranges fan out in parallel; the client waits for
                # the slowest group, not the sum.
                contribution = 2.0 * hop + service
                if contribution > total_latency:
                    total_latency = contribution
                    if traced:
                        winner_spans = (group_mark, tracer.mark())
                served = True
                contacted += 1
                break
            if not served:
                rows, hop_latency = self._range_migration_fallback(group, key_range,
                                                                   now, limit, reverse)
                if rows is not None:
                    group_mark = tracer.mark() if traced else 0
                    if traced:
                        tracer.add("dual_route", hop_latency,
                                   detail=f"range for group={group.group_id} "
                                          "served by migration source")
                    all_rows.extend(rows)
                    if hop_latency > total_latency:
                        total_latency = hop_latency
                        if traced:
                            winner_spans = (group_mark, tracer.mark())
                    contacted += 1
                    continue
                self._ops["failed"] += 1
                if traced:
                    tracer.demote_since(fanout_mark)
                return RequestResult(success=False, latency=total_latency,
                                     error=f"range unavailable in group {group.group_id}")
        all_rows.sort(key=lambda kv: kv[0], reverse=reverse)
        if limit is not None:
            all_rows = all_rows[:limit]
        cluster = self._cluster
        if cluster._load_tracker is not None:  # noqa: SLF001 - router feeds it
            # Range scans are real partition load too: charge each partition
            # the scan returned rows from, so query-heavy workloads are
            # visible to the repartitioner.  An empty scan still touched the
            # partition holding the range start.
            tokens = {str(key[0]) for key, _ in all_rows}
            if not tokens and key_range.start is not None:
                tokens = {str(key_range.start[0])}
            for token in tokens:
                cluster.note_access(key_range.namespace, (token,),
                                    is_write=False, token=token)
        if traced:
            tracer.demote_since(fanout_mark)
            tracer.keep_on_path(*winner_spans)
        return RequestResult(success=True, latency=total_latency, rows=all_rows)

    # ------------------------------------------------- migration dual-routing

    def _migration_source_groups(self, migrations, group: ReplicaGroup):
        """Distinct live source groups still holding in-flight copies,
        newest cut-over first, excluding the current owner."""
        sources = []
        seen = {group.group_id}
        for record in reversed(migrations):
            source = self._cluster.groups.get(record.source_group)
            if source is None or source.group_id in seen:
                continue
            seen.add(source.group_id)
            sources.append(source)
        return sources

    def _mirror_to_migration_sources(self, migrations, group: ReplicaGroup,
                                     namespace: str, key: Key,
                                     versioned: VersionedValue) -> None:
        """Mirror an accepted write onto every migration source group.

        Fallback reads served from a source during the in-flight window must
        not miss writes accepted at the new owner; the mirror rides the
        background replication path (no extra client latency).
        """
        for source in self._migration_source_groups(migrations, group):
            for node_id in source.node_ids:
                node = self._nodes.get(node_id)
                if node is not None and node.alive:
                    node.apply_replica_write(namespace, key, versioned)

    def _migration_write_fallback(self, migrations, group: ReplicaGroup,
                                  namespace: str, key: Key,
                                  versioned: VersionedValue,
                                  now: float) -> Optional[RequestResult]:
        """Accept a write at a migration source when the new primary is down.

        The value is also pushed to the target's surviving replicas (with a
        retrying propagation for its downed nodes) so it is not lost when the
        source copies are reclaimed at migration completion.
        """
        for source in self._migration_source_groups(migrations, group):
            source_primary = self._nodes.get(source.primary)
            if source_primary is None or not source_primary.alive:
                continue
            # The version computed against the down target primary is
            # meaningless (peek saw nothing); re-derive it from the source,
            # which holds the migrated copy, so version order is preserved
            # for session guarantees and staleness checks.
            current = self._safe_peek(source_primary, namespace, key)
            if current is not None and current.version >= versioned.version:
                versioned = VersionedValue(
                    value=versioned.value,
                    timestamp=versioned.timestamp,
                    writer=versioned.writer,
                    version=current.version + 1,
                    tombstone=versioned.tombstone,
                )
            try:
                hop = self._network.delay(CLIENT_ENDPOINT, source.primary)
                service = source_primary.put(namespace, key, versioned, now)
            except (NetworkPartitionError, NodeDownError):
                continue
            for node_id in group.node_ids:
                node = self._nodes.get(node_id)
                if node is not None and node.alive:
                    node.apply_replica_write(namespace, key, versioned)
                else:
                    # A downed target node (often the primary that forced this
                    # fallback) must still receive the write once it recovers,
                    # or source reclamation at completion would lose it.
                    self._cluster.replication.replicate_to(
                        source.primary, node_id, namespace, key, versioned)
            self._cluster.replication.propagate(source, namespace, key, versioned)
            return RequestResult(success=True, latency=2.0 * hop + service,
                                 value=versioned, node_id=source.primary)
        return None

    def _range_migration_fallback(self, group: ReplicaGroup, key_range: KeyRange,
                                  now: float, limit: Optional[int],
                                  reverse: bool):
        """Serve a range from a migration source when the owning group cannot.

        Only single-partition ranges (the SCADS query pattern) are eligible:
        the source holds every key of an in-flight partition token, so its
        answer for that token's prefix range is complete.
        """
        if key_range.start is None:
            return None, 0.0
        token = str(key_range.start[0])
        for record in self._cluster.active_migrations():
            if record.target_group != group.group_id or token not in record.tokens:
                continue
            source = self._cluster.groups.get(record.source_group)
            if source is None:
                continue
            for node_id in self._read_candidates(source):
                node = self._nodes.get(node_id)
                if node is None or not node.alive or node.draining:
                    continue
                try:
                    hop = self._network.delay(CLIENT_ENDPOINT, node_id)
                    rows, service = node.get_range(key_range, now, limit, reverse)
                except (NetworkPartitionError, NodeDownError):
                    continue
                return rows, 2.0 * hop + service
        return None, 0.0

    # ----------------------------------------------------------------- helpers

    def _read_candidates(self, group: ReplicaGroup) -> Tuple[str, ...]:
        """Replica preference order for a read: a random replica, then the rest.

        Allocation-free on the hot path: every rotation of a group's replica
        list is built once and cached (keyed by the ``node_ids`` list object,
        whose identity changes if membership is ever replaced), and the
        random starting index comes from a pre-drawn block per group size
        instead of a scalar generator call per read.
        """
        node_ids = group.node_ids
        n = len(node_ids)
        if n <= 1:
            return tuple(node_ids)
        cached = self._rotation_cache.get(group.group_id)
        if cached is None or cached[0] is not node_ids or len(cached[1]) != n:
            rotations = tuple(
                tuple(node_ids[start:]) + tuple(node_ids[:start]) for start in range(n)
            )
            self._rotation_cache[group.group_id] = (node_ids, rotations)
        else:
            rotations = cached[1]
        pool = self._choice_pools.get(n)
        if pool is None or pool[1] >= self.CHOICE_BLOCK:
            # .tolist(): plain ints index the rotation tuple faster than np.int64.
            pool = [self._read_rng.integers(0, n, size=self.CHOICE_BLOCK).tolist(), 0]
            self._choice_pools[n] = pool
        start = pool[0][pool[1]]
        pool[1] += 1
        return rotations[start]

    def _quorum_read(
        self,
        group: ReplicaGroup,
        namespace: str,
        key: Key,
        read_quorum: int,
        now: float,
    ) -> RequestResult:
        if read_quorum > group.replication_factor:
            return RequestResult(
                success=False, latency=0.0,
                error=f"read quorum {read_quorum} exceeds replication factor",
            )
        # During an in-flight migration the source groups' copies count
        # toward the quorum too — in-flight keys are dual-routed, not dropped.
        node_ids = list(group.node_ids)
        for source in self._migration_source_groups(
                self._cluster.migrations_for_key(namespace, key), group):
            node_ids.extend(source.node_ids)
        responses: List[Tuple[Optional[VersionedValue], float, str]] = []
        splits: List[Tuple[float, float, float]] = []  # (2*hop, queue, service)
        tracer = self._tracer
        traced = tracer is not None and tracer.active
        for node_id in node_ids:
            if len(responses) >= read_quorum:
                break
            node = self._nodes.get(node_id)
            if node is None or not node.alive or node.draining:
                continue
            try:
                hop = self._network.delay(CLIENT_ENDPOINT, node_id)
                value, service = node.get(namespace, key, now)
            except (NetworkPartitionError, NodeDownError):
                continue
            if traced:
                queue_wait, base_service = node.split_service(service)
                splits.append((2.0 * hop, queue_wait, base_service))
            responses.append((value, 2.0 * hop + service, node_id))
        if len(responses) < read_quorum:
            self._ops["failed"] += 1
            return RequestResult(success=False, latency=0.0,
                                 error=f"only {len(responses)}/{read_quorum} read responses")
        latency = max(latency for _, latency, _ in responses)
        if traced:
            # Quorum legs run in parallel: the slowest leg is on-path, the
            # others are kept off-path for context.
            winner = max(range(len(responses)), key=lambda i: responses[i][1])
            for i, (net, queue_wait, base_service) in enumerate(splits):
                off = i != winner
                leg = responses[i][2]
                tracer.add("network", net, detail=f"quorum leg {leg}", off_path=off)
                tracer.add("queue", queue_wait, off_path=off)
                tracer.add("service", base_service, off_path=off)
        newest: Optional[VersionedValue] = None
        newest_node = None
        for value, _, node_id in responses:
            if value is not None and value.wins_over(newest):
                newest = value
                newest_node = node_id
        return RequestResult(success=True, latency=latency, value=newest, node_id=newest_node)

    @staticmethod
    def _safe_peek(node, namespace: str, key: Key):
        """Primary-side peek at the current version without failing the write path.

        Tombstones are included so that re-creating a deleted key assigns a
        version strictly greater than the tombstone's and wins last-write-wins
        ties against it on every replica.
        """
        try:
            return node.peek(namespace, key, include_tombstones=True)
        except NodeDownError:
            return None

    # ------------------------------------------------------------------- stats

    def op_counts(self) -> Dict[str, int]:
        """Counters of routed operations, used by workload accounting."""
        return dict(self._ops)
