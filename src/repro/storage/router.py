"""Request router: the storage substrate's client-facing read/write path.

The router translates logical operations (get, put, bounded range read) into
node interactions: it consults the partitioner, picks a replica, adds network
hops and node service time, performs asynchronous or quorum replication, and
reports per-request latency and success.  Session guarantees and consistency
policy live one layer up (``repro.core.consistency``); the router only offers
the mechanisms they need (read-from-primary, quorum writes, version metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.network import NetworkPartitionError
from repro.storage.cluster import Cluster
from repro.storage.node import NodeDownError
from repro.storage.records import Key, KeyRange, VersionedValue
from repro.storage.replication import ReplicaGroup

CLIENT_ENDPOINT = "client"


@dataclass
class RequestResult:
    """Outcome of one routed request."""

    success: bool
    latency: float
    value: Optional[VersionedValue] = None
    rows: List[Tuple[Key, VersionedValue]] = field(default_factory=list)
    node_id: Optional[str] = None
    error: Optional[str] = None


class Router:
    """Routes client operations onto the simulated cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._sim = cluster.sim
        self._read_rng = cluster.sim.random.get("router:replica-choice")
        self._ops = {"read": 0, "write": 0, "range": 0, "failed": 0}

    # ------------------------------------------------------------------ writes

    def write(
        self,
        namespace: str,
        key: Key,
        payload: Any,
        writer: str = "",
        write_quorum: int = 1,
        propagation_delay_override: Optional[float] = None,
        tombstone: bool = False,
    ) -> RequestResult:
        """Write ``payload`` under ``key``.

        ``write_quorum=1`` is the default lazy path: the primary acknowledges
        and replication is asynchronous.  A larger quorum waits for that many
        replicas synchronously (serializable / Dynamo-style writes).
        """
        now = self._sim.now
        group = self._cluster.group_for_key(namespace, key)
        primary = self._cluster.nodes[group.primary]
        self._ops["write"] += 1
        try:
            client_hop = self._cluster.network.delay(CLIENT_ENDPOINT, group.primary)
        except NetworkPartitionError:
            self._ops["failed"] += 1
            return RequestResult(success=False, latency=0.0, error="client partitioned from primary")
        current = self._safe_peek(primary, namespace, key)
        version = (current.version + 1) if current is not None else 1
        versioned = VersionedValue(
            value=payload,
            timestamp=now,
            writer=writer,
            version=version,
            tombstone=tombstone,
        )
        try:
            service = primary.put(namespace, key, versioned, now)
        except NodeDownError:
            self._ops["failed"] += 1
            return RequestResult(success=False, latency=client_hop, error="primary down",
                                 node_id=group.primary)

        latency = 2.0 * client_hop + service
        if write_quorum > 1:
            acks, sync_latency = self._cluster.replication.synchronous_write(
                group, namespace, key, versioned, write_quorum, now
            )
            latency += sync_latency
            if acks < write_quorum:
                self._ops["failed"] += 1
                return RequestResult(
                    success=False,
                    latency=latency,
                    node_id=group.primary,
                    error=f"only {acks}/{write_quorum} write acks",
                )
            # Remaining replicas still receive the write lazily.
        self._cluster.replication.propagate(
            group, namespace, key, versioned, delay_override=propagation_delay_override
        )
        return RequestResult(success=True, latency=latency, value=versioned,
                             node_id=group.primary)

    def delete(self, namespace: str, key: Key, writer: str = "") -> RequestResult:
        """Delete a key (tombstone write so the deletion replicates)."""
        return self.write(namespace, key, payload=None, writer=writer, tombstone=True)

    # ------------------------------------------------------------------- reads

    def read(
        self,
        namespace: str,
        key: Key,
        from_primary: bool = False,
        read_quorum: int = 1,
    ) -> RequestResult:
        """Point read.

        ``from_primary`` forces the read to the primary (used to honour
        read-your-writes when a replica is behind).  ``read_quorum > 1`` reads
        that many replicas and returns the newest version (Dynamo-style R).
        """
        now = self._sim.now
        group = self._cluster.group_for_key(namespace, key)
        self._ops["read"] += 1
        if read_quorum > 1:
            return self._quorum_read(group, namespace, key, read_quorum, now)
        candidates = [group.primary] if from_primary else self._read_candidates(group)
        last_error = "no replica available"
        for node_id in candidates:
            node = self._cluster.nodes.get(node_id)
            if node is None or not node.alive:
                last_error = f"node {node_id} down"
                continue
            try:
                hop = self._cluster.network.delay(CLIENT_ENDPOINT, node_id)
                value, service = node.get(namespace, key, now)
            except NetworkPartitionError:
                last_error = f"client partitioned from {node_id}"
                continue
            except NodeDownError:
                last_error = f"node {node_id} down"
                continue
            return RequestResult(success=True, latency=2.0 * hop + service,
                                 value=value, node_id=node_id)
        self._ops["failed"] += 1
        return RequestResult(success=False, latency=0.0, error=last_error)

    def read_range(
        self,
        key_range: KeyRange,
        limit: Optional[int] = None,
        from_primary: bool = False,
        reverse: bool = False,
    ) -> RequestResult:
        """Bounded contiguous range read — the only scan the query layer issues."""
        now = self._sim.now
        groups = self._cluster.groups_for_range(key_range)
        self._ops["range"] += 1
        all_rows: List[Tuple[Key, VersionedValue]] = []
        total_latency = 0.0
        contacted = 0
        for group in groups:
            candidates = [group.primary] if from_primary else self._read_candidates(group)
            served = False
            for node_id in candidates:
                node = self._cluster.nodes.get(node_id)
                if node is None or not node.alive:
                    continue
                try:
                    hop = self._cluster.network.delay(CLIENT_ENDPOINT, node_id)
                    rows, service = node.get_range(key_range, now, limit, reverse)
                except (NetworkPartitionError, NodeDownError):
                    continue
                all_rows.extend(rows)
                # Multi-group ranges fan out in parallel; the client waits for
                # the slowest group, not the sum.
                total_latency = max(total_latency, 2.0 * hop + service)
                served = True
                contacted += 1
                break
            if not served:
                self._ops["failed"] += 1
                return RequestResult(success=False, latency=total_latency,
                                     error=f"range unavailable in group {group.group_id}")
        all_rows.sort(key=lambda kv: kv[0], reverse=reverse)
        if limit is not None:
            all_rows = all_rows[:limit]
        return RequestResult(success=True, latency=total_latency, rows=all_rows)

    # ----------------------------------------------------------------- helpers

    def _read_candidates(self, group: ReplicaGroup) -> List[str]:
        """Replica preference order for a read: a random replica, then the rest."""
        node_ids = list(group.node_ids)
        if len(node_ids) <= 1:
            return node_ids
        start = int(self._read_rng.integers(0, len(node_ids)))
        return node_ids[start:] + node_ids[:start]

    def _quorum_read(
        self,
        group: ReplicaGroup,
        namespace: str,
        key: Key,
        read_quorum: int,
        now: float,
    ) -> RequestResult:
        if read_quorum > group.replication_factor:
            return RequestResult(
                success=False, latency=0.0,
                error=f"read quorum {read_quorum} exceeds replication factor",
            )
        responses: List[Tuple[Optional[VersionedValue], float, str]] = []
        for node_id in group.node_ids:
            if len(responses) >= read_quorum:
                break
            node = self._cluster.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            try:
                hop = self._cluster.network.delay(CLIENT_ENDPOINT, node_id)
                value, service = node.get(namespace, key, now)
            except (NetworkPartitionError, NodeDownError):
                continue
            responses.append((value, 2.0 * hop + service, node_id))
        if len(responses) < read_quorum:
            self._ops["failed"] += 1
            return RequestResult(success=False, latency=0.0,
                                 error=f"only {len(responses)}/{read_quorum} read responses")
        latency = max(latency for _, latency, _ in responses)
        newest: Optional[VersionedValue] = None
        newest_node = None
        for value, _, node_id in responses:
            if value is not None and value.wins_over(newest):
                newest = value
                newest_node = node_id
        return RequestResult(success=True, latency=latency, value=newest, node_id=newest_node)

    @staticmethod
    def _safe_peek(node, namespace: str, key: Key):
        """Primary-side peek at the current version without failing the write path."""
        try:
            return node.peek(namespace, key)
        except NodeDownError:
            return None

    # ------------------------------------------------------------------- stats

    def op_counts(self) -> Dict[str, int]:
        """Counters of routed operations, used by workload accounting."""
        return dict(self._ops)
