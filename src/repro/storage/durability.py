"""Durability modelling.

The paper's durability axis lets a developer declare "data must persist with
99.999 % probability" and expects the system to choose a replication level
that achieves it given expected node failure rates.  This module contains
that calculation: the probability that all replicas of a committed write fail
within the window before the data can be re-replicated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class DurabilityModel:
    """Analytic model of data-loss probability under independent node failures.

    Args:
        node_mttf_hours: mean time to failure of one node, in hours.
        re_replication_hours: time to restore full replication after a node
            loss (detect + copy), in hours.  Data is lost only if every
            replica fails within this window of one another.
    """

    node_mttf_hours: float = 4380.0  # six months
    re_replication_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.node_mttf_hours <= 0:
            raise ValueError("node MTTF must be positive")
        if self.re_replication_hours <= 0:
            raise ValueError("re-replication time must be positive")

    def node_failure_probability_in_window(self) -> float:
        """Probability a single node fails during one re-replication window."""
        return 1.0 - math.exp(-self.re_replication_hours / self.node_mttf_hours)

    def loss_probability(self, replication_factor: int, horizon_hours: float = 8760.0) -> float:
        """Probability of losing a given object within ``horizon_hours``.

        Modelled as a sequence of independent re-replication windows: in each
        window the object is lost if the remaining ``replication_factor - 1``
        replicas also fail before re-replication completes, given the first
        failure that opened the window.
        """
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        p_window = self.node_failure_probability_in_window()
        # Rate of "first failure" events over the horizon for the replica set.
        first_failure_events = (horizon_hours / self.node_mttf_hours) * replication_factor
        # Given a first failure, all other replicas must fail inside the window.
        p_cascade = p_window ** (replication_factor - 1)
        expected_loss_events = first_failure_events * p_cascade
        return 1.0 - math.exp(-expected_loss_events)

    def durability(self, replication_factor: int, horizon_hours: float = 8760.0) -> float:
        """Probability the object survives the horizon (1 - loss probability)."""
        return 1.0 - self.loss_probability(replication_factor, horizon_hours)

    def required_replication_factor(
        self,
        target_durability: float,
        horizon_hours: float = 8760.0,
        max_factor: int = 10,
    ) -> int:
        """Smallest replication factor meeting the declared durability SLA.

        Raises ``ValueError`` if no factor up to ``max_factor`` achieves it —
        a genuinely unmeetable specification, which SCADS surfaces to the
        developer rather than silently under-delivering.
        """
        if not 0.0 < target_durability < 1.0:
            raise ValueError(
                f"target durability must be in (0, 1), got {target_durability}"
            )
        for factor in range(1, max_factor + 1):
            if self.durability(factor, horizon_hours) >= target_durability:
                return factor
        raise ValueError(
            f"no replication factor <= {max_factor} achieves durability "
            f"{target_durability} with MTTF {self.node_mttf_hours}h and "
            f"re-replication {self.re_replication_hours}h"
        )

    def replication_cost_savings(
        self,
        relaxed_durability: float,
        strict_durability: float,
        horizon_hours: float = 8760.0,
    ) -> float:
        """Fractional storage saved by relaxing the durability SLA.

        The paper's example: old comments can tolerate a lower durability
        target, saving replication cost.
        """
        strict = self.required_replication_factor(strict_durability, horizon_hours)
        relaxed = self.required_replication_factor(relaxed_durability, horizon_hours)
        if strict == 0:
            return 0.0
        return 1.0 - relaxed / strict
