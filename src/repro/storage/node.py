"""A simulated storage node.

Each node holds ordered per-namespace key/value maps and models its own
request latency.  Latency is load-dependent: the node keeps an exponentially
weighted estimate of its arrival rate, derives a utilisation against its
configured capacity, and inflates a base log-normal service time with an
M/M/1-style queueing factor.  An overloaded node therefore produces exactly
the tail-latency degradation the SLA monitor and autoscaler are built to
detect and correct.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.latency import LogNormalLatency, QueueingLatency
from repro.storage.records import Key, KeyRange, VersionedValue, validate_key


class NodeDownError(RuntimeError):
    """Raised when an operation is attempted on a crashed node."""


@dataclass(slots=True)
class NodeStats:
    """Counters a node exposes to the cluster manager and the ML features."""

    reads: int = 0
    writes: int = 0
    range_reads: int = 0
    keys_stored: int = 0
    arrival_rate: float = 0.0
    utilisation: float = 0.0


class _NamespaceStore:
    """An ordered map for one namespace on one node.

    Implemented as a dict plus a sorted key list maintained with ``bisect`` —
    O(log n) point lookups and O(log n + k) range scans, which is the access
    profile the SCADS query model restricts itself to.
    """

    def __init__(self) -> None:
        self._data: Dict[Key, VersionedValue] = {}
        self._sorted_keys: List[Key] = []

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Key) -> Optional[VersionedValue]:
        return self._data.get(key)

    def put(self, key: Key, value: VersionedValue) -> None:
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = value

    def delete(self, key: Key) -> bool:
        if key not in self._data:
            return False
        del self._data[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
            self._sorted_keys.pop(index)
        return True

    def range(self, start: Optional[Key], end: Optional[Key],
              limit: Optional[int] = None,
              reverse: bool = False) -> List[Tuple[Key, VersionedValue]]:
        """All (key, value) pairs with start <= key < end, in key order.

        With ``reverse=True`` the scan walks backwards from the end of the
        range (still returning keys in descending order), so a LIMIT on a
        descending query reads only ``limit`` entries.
        """
        lo = 0 if start is None else bisect.bisect_left(self._sorted_keys, start)
        hi = len(self._sorted_keys) if end is None else bisect.bisect_left(self._sorted_keys, end)
        keys = self._sorted_keys[lo:hi]
        if reverse:
            keys = keys[::-1]
        if limit is not None:
            keys = keys[:limit]
        return [(k, self._data[k]) for k in keys]

    def keys(self) -> Iterator[Key]:
        return iter(self._sorted_keys)


class StorageNode:
    """One simulated storage server.

    Args:
        node_id: unique identifier (also used as a network endpoint).
        rng: random generator for service-time sampling.
        capacity_ops_per_sec: sustainable request rate before queueing delay
            dominates; the autoscaler reasons in these units.
        base_median_latency: median service time at low load, in seconds.
        rate_ewma_alpha: smoothing factor for the arrival-rate estimate.
    """

    def __init__(
        self,
        node_id: str,
        rng: np.random.Generator,
        capacity_ops_per_sec: float = 1000.0,
        base_median_latency: float = 0.004,
        latency_sigma: float = 0.45,
        rate_ewma_alpha: float = 0.2,
    ) -> None:
        if capacity_ops_per_sec <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_ops_per_sec}")
        self.node_id = node_id
        self.capacity_ops_per_sec = float(capacity_ops_per_sec)
        self._rng = rng
        self._latency = QueueingLatency(LogNormalLatency(base_median_latency, latency_sigma))
        self._rate_ewma_alpha = rate_ewma_alpha
        self._namespaces: Dict[str, _NamespaceStore] = {}
        self._stats = NodeStats()
        self._last_arrival: Optional[float] = None
        self._ewma_interarrival: Optional[float] = None
        # Operations seen at the current arrival instant (a query's fan-out
        # or a maintenance tick lands many ops at one simulated timestamp).
        self._burst_count = 1
        self._alive = True
        self._draining = False

    # ------------------------------------------------------------------ state

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def draining(self) -> bool:
        """True while the node is being gracefully evacuated (spot notice).

        A draining node still serves in-flight work (migration handoff,
        reconciliation) but the router stops sending it client reads and the
        replication engine stops targeting it with new writes, so detaching
        it never loses an acknowledged update.
        """
        return self._draining

    def set_draining(self, draining: bool) -> None:
        self._draining = draining

    def crash(self) -> None:
        """Mark the node as failed; subsequent operations raise NodeDownError."""
        self._alive = False

    def recover(self) -> None:
        """Bring a crashed node back (its data survives, as on a reboot)."""
        self._alive = True

    def wipe(self) -> None:
        """Drop all data (decommissioning / fresh instance)."""
        self._namespaces.clear()
        self._stats.keys_stored = 0

    def _check_alive(self) -> None:
        if not self._alive:
            raise NodeDownError(f"node {self.node_id} is down")

    # -------------------------------------------------------------- load model

    def _record_arrival(self, now: float) -> None:
        last = self._last_arrival
        ewma = self._ewma_interarrival
        if last is None:
            self._last_arrival = now
            self._burst_count = 1
        else:
            gap = now - last
            if gap < 1e-6:
                # Co-timed with the previous arrival: a query's sequential
                # dereferences and a maintenance tick's writes all land at
                # one simulated instant.  That is a burst absorbed by one
                # service window, not a microsecond-scale arrival rate —
                # folding the raw gap into the EWMA would peg utilisation
                # at ~1.0 for a node whose true load is a few ops/sec.
                # Count the op and wait for simulated time to advance.
                self._burst_count += 1
            else:
                # Spread the elapsed gap over every op that arrived at the
                # previous instant, so a burst of N ops after ``gap``
                # seconds contributes a rate of N/gap — the windowed rate.
                per_op_gap = gap / self._burst_count
                if per_op_gap < 1e-6:
                    per_op_gap = 1e-6
                if ewma is None:
                    ewma = per_op_gap
                else:
                    alpha = self._rate_ewma_alpha
                    ewma = alpha * per_op_gap + (1 - alpha) * ewma
                self._ewma_interarrival = ewma
                self._burst_count = 1
                self._last_arrival = now
        rate = 1.0 / ewma if ewma is not None and ewma > 0 else 0.0
        latency = self._latency
        latency.set_utilisation(rate / self.capacity_ops_per_sec)
        stats = self._stats
        stats.arrival_rate = rate
        stats.utilisation = latency._utilisation

    def arrival_rate(self) -> float:
        """Current smoothed arrival rate estimate in ops/sec."""
        if self._ewma_interarrival is None or self._ewma_interarrival <= 0:
            return 0.0
        return 1.0 / self._ewma_interarrival

    def utilisation(self) -> float:
        """Current utilisation estimate (0..~1)."""
        return self._latency.utilisation

    def decay_load(self, now: float) -> None:
        """Decay the arrival-rate estimate when traffic has stopped arriving.

        Without this, a node that suddenly stops receiving requests would
        keep reporting its last (possibly very high) utilisation forever and
        the autoscaler could never scale down.
        """
        if self._last_arrival is None or self._ewma_interarrival is None:
            return
        idle_gap = now - self._last_arrival
        if idle_gap > self._ewma_interarrival:
            self._ewma_interarrival = (
                self._rate_ewma_alpha * idle_gap
                + (1 - self._rate_ewma_alpha) * self._ewma_interarrival
            )
            self._last_arrival = now
            self._burst_count = 1
            self._stats.arrival_rate = self.arrival_rate()
            self._latency.set_utilisation(self.arrival_rate() / self.capacity_ops_per_sec)
            self._stats.utilisation = self._latency.utilisation

    def set_contention(self, factor: float) -> None:
        """Apply a co-tenant service inflation factor (see ``repro.sim.hosts``)."""
        self._latency.set_contention(factor)

    def contention(self) -> float:
        """Current co-tenant service inflation factor (1.0 = quiet host)."""
        return self._latency.contention

    def service_residual(self) -> float:
        """EWMA of observed base service time over the model's analytic mean.

        Near 1.0 on a quiet host, approaches the contention factor under
        interference; the per-host health estimator averages it across a
        host's colocated nodes to name noisy hosts.
        """
        return self._latency.service_residual()

    def service_time(self) -> float:
        """Sample a service time at the node's current utilisation."""
        return self._latency.sample(self._rng)

    def split_service(self, total: float) -> Tuple[float, float]:
        """Decompose a just-sampled latency into (queue_wait, base_service).

        The queueing model inflates the base draw by ``1 / (1 - rho)``, so
        at the utilisation that produced the sample a fraction ``rho`` of
        the total is time spent waiting rather than being served.  Called
        by the tracer immediately after the op that produced ``total``
        (``_record_arrival`` fixes rho before sampling); the two parts sum
        to ``total`` exactly, so trace reconciliation is preserved.
        """
        rho = self._latency.utilisation
        return total * rho, total * (1.0 - rho)

    # ------------------------------------------------------------------- data

    def _store(self, namespace: str) -> _NamespaceStore:
        store = self._namespaces.get(namespace)
        if store is None:
            store = self._namespaces[namespace] = _NamespaceStore()
        return store

    def peek(self, namespace: str, key: Key,
             include_tombstones: bool = False) -> Optional[VersionedValue]:
        """Read the current version of a key without touching the load model.

        Used by the write path to determine the next version number and by
        replication/consistency internals; client reads go through :meth:`get`.
        ``include_tombstones`` exposes deletion markers: the write path needs
        them so a re-created key's version advances past its tombstone's —
        otherwise a delete and a re-create issued at the same simulated time
        tie under last-write-wins and replicas keep whichever arrived last.
        """
        if not self._alive:
            raise NodeDownError(f"node {self.node_id} is down")
        store = self._namespaces.get(namespace)
        value = store._data.get(key) if store is not None else None
        if value is not None and value.tombstone and not include_tombstones:
            return None
        return value

    def get(self, namespace: str, key: Key, now: float) -> Tuple[Optional[VersionedValue], float]:
        """Point read.  Returns (value-or-None, simulated service latency)."""
        if not self._alive:
            raise NodeDownError(f"node {self.node_id} is down")
        validate_key(key)
        self._record_arrival(now)
        self._stats.reads += 1
        store = self._namespaces.get(namespace)
        value = store._data.get(key) if store is not None else None
        if value is not None and value.tombstone:
            value = None
        return value, self._latency.sample(self._rng)

    def multi_get(
        self, namespace: str, keys: List[Key], now: float,
    ) -> Tuple[Dict[Key, Optional[VersionedValue]], float]:
        """Batched point read: one request's worth of load, many keys.

        The query layer's bounded dereference lists arrive as a single
        multiget, so the node charges its load model one arrival — not one
        per key — and adds a small per-key marginal cost, like adjacent
        rows in a range scan.  Returns ({key: value-or-None}, latency).
        """
        if not self._alive:
            raise NodeDownError(f"node {self.node_id} is down")
        self._record_arrival(now)
        store = self._namespaces.get(namespace)
        out: Dict[Key, Optional[VersionedValue]] = {}
        for key in keys:
            validate_key(key)
            self._stats.reads += 1
            value = store._data.get(key) if store is not None else None
            if value is not None and value.tombstone:
                value = None
            out[key] = value
        per_key_cost = 0.00002  # 20 microseconds per additional key
        latency = self._latency.sample(self._rng) + per_key_cost * max(len(keys) - 1, 0)
        return out, latency

    def put(self, namespace: str, key: Key, value: VersionedValue, now: float) -> float:
        """Point write.  Returns the simulated service latency."""
        if not self._alive:
            raise NodeDownError(f"node {self.node_id} is down")
        validate_key(key)
        self._record_arrival(now)
        self._stats.writes += 1
        store = self._store(namespace)
        existed = store.get(key) is not None
        store.put(key, value)
        if not existed:
            self._stats.keys_stored += 1
        return self._latency.sample(self._rng)

    def apply_replica_write(self, namespace: str, key: Key, value: VersionedValue) -> bool:
        """Apply an asynchronously replicated write, respecting last-write-wins.

        Replica application does not count against the node's request load —
        in a real system it rides the background replication path.  Returns
        True if the value was applied, False if a newer value was already
        present.
        """
        self._check_alive()
        store = self._store(namespace)
        current = store.get(key)
        if current is not None and not value.wins_over(current):
            return False
        if current is None:
            self._stats.keys_stored += 1
        store.put(key, value)
        return True

    def delete(self, namespace: str, key: Key, tombstone: VersionedValue, now: float) -> float:
        """Delete via tombstone so replication can propagate the deletion."""
        self._check_alive()
        validate_key(key)
        self._record_arrival(now)
        self._stats.writes += 1
        self._store(namespace).put(key, tombstone)
        return self.service_time()

    def get_range(
        self,
        key_range: KeyRange,
        now: float,
        limit: Optional[int] = None,
        reverse: bool = False,
    ) -> Tuple[List[Tuple[Key, VersionedValue]], float]:
        """Bounded contiguous range read — the only scan SCADS queries perform.

        Latency scales mildly with the number of returned entries (sequential
        reads of adjacent keys), preserving the paper's claim that bounded
        ranges keep per-query cost constant as the *user base* grows.
        """
        self._check_alive()
        self._record_arrival(now)
        self._stats.range_reads += 1
        store = self._store(key_range.namespace)
        rows = [
            (key, value)
            for key, value in store.range(key_range.start, key_range.end, limit, reverse)
            if not value.tombstone
        ]
        per_row_cost = 0.00002  # 20 microseconds per adjacent row
        latency = self.service_time() + per_row_cost * len(rows)
        return rows, latency

    def scan_namespace(self, namespace: str) -> List[Tuple[Key, VersionedValue]]:
        """Full scan of one namespace, used only for data movement and tests."""
        self._check_alive()
        store = self._store(namespace)
        data = store._data
        return [(key, data[key]) for key in store._sorted_keys]

    def namespaces(self) -> List[str]:
        return sorted(self._namespaces.keys())

    def key_count(self, namespace: Optional[str] = None) -> int:
        """Number of live keys stored, optionally restricted to one namespace."""
        if namespace is not None:
            return len(self._namespaces.get(namespace, _NamespaceStore()))
        return sum(len(store) for store in self._namespaces.values())

    @property
    def stats(self) -> NodeStats:
        return self._stats
