"""Observability layer: span tracing, telemetry registry, attribution.

Everything in this package is deliberately decoupled from the simulator:
records hold plain floats/strings, are picklable across process-pool
workers, and merge exactly (counters sum, histograms use
``PercentileEstimator.merge``, traces concatenate in run order) so sweep
results are byte-identical at any worker count.
"""

from repro.obs.attribution import WindowAttribution, attribute_windows, format_attribution
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.obs.timeline import DecisionTimeline, FleetEvent, ProvisioningDecision, SlaVerdict
from repro.obs.tracing import SPAN_KINDS, Span, TraceRecord, Tracer

__all__ = [
    "SPAN_KINDS",
    "Span",
    "TraceRecord",
    "Tracer",
    "Telemetry",
    "TelemetryConfig",
    "WindowAttribution",
    "attribute_windows",
    "format_attribution",
    "DecisionTimeline",
    "FleetEvent",
    "ProvisioningDecision",
    "SlaVerdict",
]
