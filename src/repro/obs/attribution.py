"""Latency attribution: where did the worst operations' milliseconds go?

Takes the flat trace list a run produced and answers, per time window:
what was the p-th percentile of traced latencies, and how do the
worst-decile traces' on-path span kinds split that time?  This is the
"contention vs. capacity" measurement substrate ROADMAP direction 3
needs — a window whose worst ops are dominated by ``queue`` spans is
under-provisioned; one dominated by ``service`` with low queueing is
contended or mis-calibrated; ``dual_route``/``cache_miss`` markers
attribute tails to migrations and cold caches instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, Iterable, List

from repro.obs.tracing import TraceRecord


@dataclass(slots=True)
class WindowAttribution:
    """p99 + span-kind breakdown of the worst traces in one time window."""

    start: float
    end: float
    trace_count: int
    percentile: float
    percentile_latency: float
    worst_count: int
    kind_seconds: Dict[str, float] = field(default_factory=dict)

    def kind_fractions(self) -> Dict[str, float]:
        total = sum(self.kind_seconds.values())
        if total <= 0.0:
            return {kind: 0.0 for kind in self.kind_seconds}
        return {kind: seconds / total for kind, seconds in self.kind_seconds.items()}

    def describe(self) -> str:
        fractions = self.kind_fractions()
        parts = ", ".join(
            f"{kind} {fractions[kind] * 100:.1f}%"
            for kind in sorted(self.kind_seconds, key=self.kind_seconds.get, reverse=True)
        )
        return (
            f"[{self.start:8.1f}s – {self.end:8.1f}s] "
            f"traces={self.trace_count:<5d} "
            f"p{self.percentile:g}={self.percentile_latency * 1000:8.3f}ms "
            f"worst {self.worst_count}: {parts or 'n/a'}"
        )


def attribute_windows(
    traces: Iterable[TraceRecord],
    window: float = 60.0,
    percentile: float = 99.0,
    worst_fraction: float = 0.1,
) -> List[WindowAttribution]:
    """Per-window percentile + worst-decile span-kind attribution.

    Windows are aligned at multiples of ``window`` seconds from t=0.
    Within each window the traces are ranked by latency and the top
    ``worst_fraction`` (at least one) contribute their on-path span-kind
    durations to the breakdown.
    """
    if window <= 0.0:
        raise ValueError("window must be positive")
    if not 0.0 < worst_fraction <= 1.0:
        raise ValueError("worst_fraction must be in (0, 1]")
    buckets: Dict[int, List[TraceRecord]] = {}
    for trace in traces:
        buckets.setdefault(int(trace.start // window), []).append(trace)
    reports: List[WindowAttribution] = []
    for index in sorted(buckets):
        bucket = sorted(buckets[index], key=lambda t: t.latency)
        latencies = [t.latency for t in bucket]
        rank = (len(latencies) - 1) * (percentile / 100.0)
        lo = int(rank)
        hi = min(lo + 1, len(latencies) - 1)
        p_latency = latencies[lo] + (latencies[hi] - latencies[lo]) * (rank - lo)
        worst_count = max(1, ceil(len(bucket) * worst_fraction))
        kind_seconds: Dict[str, float] = {}
        for trace in bucket[-worst_count:]:
            for kind, seconds in trace.kind_totals().items():
                kind_seconds[kind] = kind_seconds.get(kind, 0.0) + seconds
        reports.append(
            WindowAttribution(
                start=index * window,
                end=(index + 1) * window,
                trace_count=len(bucket),
                percentile=percentile,
                percentile_latency=p_latency,
                worst_count=worst_count,
                kind_seconds=kind_seconds,
            )
        )
    return reports


def format_attribution(reports: Iterable[WindowAttribution]) -> str:
    """One line per window, ready to print."""
    lines = [report.describe() for report in reports]
    return "\n".join(lines) if lines else "(no traces)"
