"""Unified telemetry registry: counters, gauges, and histograms.

One ``Telemetry`` instance is shared by every subsystem of an engine;
metric names are namespaced by convention (``"router.reads"``,
``"cache.hits"``, ``"replication.lag"``).  Histograms are backed by the
existing :class:`~repro.metrics.percentiles.PercentileEstimator`, which
gives exact cross-process merging for free.

Merge semantics (used by the sweep fabric):

* counters — summed,
* gauges — max (gauges here record high-water marks, e.g. peak fleet
  size; a last-write-wins gauge would not be order-independent across
  workers),
* histograms — ``PercentileEstimator.merge`` (exact).

The registry is plain data: no simulator references, picklable by
default, and cheap — a counter bump is one dict ``get`` + add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.percentiles import PercentileEstimator


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the observability layer.

    ``trace_sample_interval`` — every Nth operation *per op stream* opens
    a trace.  Sampling is a deterministic modulo on a per-stream counter,
    never an RNG draw, so enabling tracing cannot perturb the simulation.
    ``max_traces`` bounds retained traces per tracer (oldest kept: the
    cap stops appends rather than evicting, so the retained prefix is
    identical regardless of when the run is inspected).
    """

    trace_sample_interval: int = 64
    max_traces: int = 20000

    def __post_init__(self) -> None:
        if self.trace_sample_interval < 1:
            raise ValueError("trace_sample_interval must be >= 1")
        if self.max_traces < 0:
            raise ValueError("max_traces must be >= 0")


class Telemetry:
    """Registry of counters/gauges/histograms for one engine instance."""

    __slots__ = ("counters", "gauges", "_histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._histograms: Dict[str, PercentileEstimator] = {}

    # ------------------------------------------------------------- recording

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def set_count(self, name: str, value: int) -> None:
        """Overwrite a counter with an externally tracked absolute value."""
        self.counters[name] = int(value)

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water mark (merge takes the max)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = PercentileEstimator()
        histogram.add(value)

    def histogram(self, name: str) -> PercentileEstimator:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = PercentileEstimator()
        return histogram

    def set_histogram(self, name: str, estimator: PercentileEstimator) -> None:
        """Replace a histogram with a copy of an externally tracked one.

        The collection-time counterpart of :meth:`set_count`: a subsystem
        that already maintains its own estimator on the hot path (e.g. the
        engine's latency recorder) is folded in once at collection rather
        than double-observed per request.  Copied, not referenced, so later
        samples on the source don't leak into an already-taken registry and
        repeated collection stays idempotent.
        """
        fresh = PercentileEstimator()
        fresh.merge(estimator)
        self._histograms[name] = fresh

    def histograms(self) -> Dict[str, PercentileEstimator]:
        return dict(self._histograms)

    # --------------------------------------------------------------- merging

    def merge(self, other: "Telemetry") -> "Telemetry":
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = PercentileEstimator()
            mine.merge(histogram)
        return self

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary: counters/gauges verbatim, histogram stats."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: est.snapshot()
                for name, est in sorted(self._histograms.items())
            },
        }

    # --------------------------------------------------------------- pickling

    def __getstate__(self) -> Dict[str, object]:
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self._histograms,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.counters = state["counters"]  # type: ignore[assignment]
        self.gauges = state["gauges"]  # type: ignore[assignment]
        self._histograms = state["histograms"]  # type: ignore[assignment]


def resolve_telemetry_config(
    telemetry: "Optional[object]",
) -> Optional[TelemetryConfig]:
    """Normalise the ``Scads(telemetry=...)`` knob.

    Accepts ``None``/``False`` (off), ``True`` (defaults), or a
    :class:`TelemetryConfig`.
    """
    if telemetry is None or telemetry is False:
        return None
    if telemetry is True:
        return TelemetryConfig()
    if isinstance(telemetry, TelemetryConfig):
        return telemetry
    raise TypeError(
        "telemetry must be None, a bool, or a TelemetryConfig, "
        f"got {type(telemetry).__name__}"
    )
