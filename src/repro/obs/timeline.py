"""Structured provisioning decision timeline.

Every control step the controller emits a :class:`ProvisioningDecision`
binding together what was observed (SLA window verdicts, cache
absorption), what the planner concluded (the full sizing rationale,
including the analytical :class:`SizingBreakdown` description and the
hybrid clamp-band outcome), and what was done about it (the action kind
and group delta).  Rent/release/attach fleet movements are logged as
:class:`FleetEvent` rows as they happen.

This replaces reading ``describe()`` strings out of ad-hoc prints or
digging through ``controller.plans()`` after the fact: the timeline is a
first-class, picklable record that merges across sweep workers and dumps
to JSON via ``scripts/analyze_trace.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class SlaVerdict:
    """One SLA's attainment over one control window."""

    op: str
    satisfied: bool
    observed_latency: float
    target_latency: float
    requests: int


@dataclass(slots=True)
class ProvisioningDecision:
    """One control step: observation -> plan -> action, fully explained."""

    time: float
    action_kind: str  # "scale_up", "scale_down", "repartition", "hold"
    groups_before: int
    groups_after: int
    target_nodes: int
    forecast_rate: float
    reason: str
    backend: str = ""
    sizing_detail: str = ""  # the analytical SizingBreakdown.describe()
    analytic_nodes: Optional[int] = None
    ml_nodes: Optional[int] = None
    ml_clamped: bool = False
    clamp_band: float = 0.0
    latency_infeasible: bool = False
    cache_hit_rate: float = 0.0
    sla_verdicts: List[SlaVerdict] = field(default_factory=list)

    def describe(self) -> str:
        verdicts = " ".join(
            f"{v.op}:{'ok' if v.satisfied else 'VIOLATED'}"
            f"({v.observed_latency * 1000:.1f}/{v.target_latency * 1000:.0f}ms)"
            for v in self.sla_verdicts
        )
        lines = [
            f"t={self.time:8.1f}s {self.action_kind:<11} "
            f"groups {self.groups_before}->{self.groups_after} "
            f"target={self.target_nodes} nodes "
            f"forecast={self.forecast_rate:.0f} ops/s — {self.reason}"
        ]
        if verdicts:
            lines.append(f"    sla: {verdicts}")
        if self.sizing_detail:
            lines.append(f"    sizing: {self.sizing_detail}")
        if self.ml_clamped:
            lines.append(
                f"    hybrid: ml={self.ml_nodes} clamped to "
                f"±{self.clamp_band:.0%} of analytic={self.analytic_nodes}"
            )
        return "\n".join(lines)


@dataclass(slots=True)
class FleetEvent:
    """One fleet movement: instances rented, released, or a group attached."""

    time: float
    kind: str  # "rent", "release", "attach"
    instances: int
    group_id: str = ""
    detail: str = ""

    def describe(self) -> str:
        group = f" group={self.group_id}" if self.group_id else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:8.1f}s {self.kind:<8} {self.instances} instance(s){group}{detail}"


class DecisionTimeline:
    """Append-only log of provisioning decisions and fleet events."""

    __slots__ = ("decisions", "events")

    def __init__(self) -> None:
        self.decisions: List[ProvisioningDecision] = []
        self.events: List[FleetEvent] = []

    def record_decision(self, decision: ProvisioningDecision) -> None:
        self.decisions.append(decision)

    def record_event(
        self, time: float, kind: str, instances: int, group_id: str = "", detail: str = ""
    ) -> None:
        self.events.append(
            FleetEvent(time=time, kind=kind, instances=instances,
                       group_id=group_id, detail=detail)
        )

    def merge(self, other: "DecisionTimeline") -> "DecisionTimeline":
        """Concatenate another run's timeline (sweep merge, run order)."""
        self.decisions.extend(other.decisions)
        self.events.extend(other.events)
        return self

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of the whole timeline."""
        return {
            "decisions": [
                {
                    "time": d.time,
                    "action": d.action_kind,
                    "groups_before": d.groups_before,
                    "groups_after": d.groups_after,
                    "target_nodes": d.target_nodes,
                    "forecast_rate": d.forecast_rate,
                    "reason": d.reason,
                    "backend": d.backend,
                    "sizing_detail": d.sizing_detail,
                    "analytic_nodes": d.analytic_nodes,
                    "ml_nodes": d.ml_nodes,
                    "ml_clamped": d.ml_clamped,
                    "clamp_band": d.clamp_band,
                    "latency_infeasible": d.latency_infeasible,
                    "cache_hit_rate": d.cache_hit_rate,
                    "sla": [
                        {
                            "op": v.op,
                            "satisfied": v.satisfied,
                            "observed_latency": v.observed_latency,
                            "target_latency": v.target_latency,
                            "requests": v.requests,
                        }
                        for v in d.sla_verdicts
                    ],
                }
                for d in self.decisions
            ],
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "instances": e.instances,
                    "group_id": e.group_id,
                    "detail": e.detail,
                }
                for e in self.events
            ],
        }

    def describe(self, last: Optional[int] = None) -> str:
        decisions = self.decisions if last is None else self.decisions[-last:]
        return "\n".join(d.describe() for d in decisions) or "(no decisions)"
