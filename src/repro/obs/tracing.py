"""Deterministic span tracing for sampled requests.

The tracer opens a trace for every Nth operation of each op stream
(read/write/delete/query), decided by a plain per-stream counter — no RNG
is consulted, so a traced run draws exactly the same random sequence as
an untraced one and stays byte-identical for the same seed.

A trace is a flat list of :class:`Span` children stamped with sim-clock
durations.  Spans come in two flavours:

* **on-path** spans, whose durations sum to the operation's recorded
  end-to-end latency (the reconciliation invariant the tests assert), and
* **off-path** spans (``off_path=True``), kept for context but excluded
  from the sum — e.g. the losing replica groups of a parallel range
  fan-out, or the individual dereferences folded into one aggregate
  ``index_deref`` span.

Span ``kind`` taxonomy: ``queue`` (time waiting for a node executor),
``service`` (node service time proper), ``network`` (client/node hops),
``cache_hit``/``cache_miss`` (front-tier outcome; the hit carries the
cache latency, the miss is a zero-duration marker), ``dual_route``
(migration fallback marker), ``index_deref`` (aggregate parallel entity
dereference of a query), ``multiget`` (batched per-group fetch),
``replication_ack`` (synchronous quorum acknowledgement wait).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

SPAN_KINDS = frozenset(
    {
        "queue",
        "service",
        "network",
        "dual_route",
        "cache_hit",
        "cache_miss",
        "index_deref",
        "multiget",
        "replication_ack",
    }
)


@dataclass(slots=True)
class Span:
    """One timed (or marker) child of a trace."""

    kind: str
    duration: float
    detail: str = ""
    off_path: bool = False


@dataclass(slots=True)
class TraceRecord:
    """A completed trace for one sampled operation."""

    trace_id: int
    op: str
    start: float
    latency: float
    success: bool
    spans: List[Span] = field(default_factory=list)

    def on_path_total(self) -> float:
        return sum(span.duration for span in self.spans if not span.off_path)

    def reconciles(self, tol: float = 1e-9) -> bool:
        """Whether on-path span durations sum to the recorded latency."""
        return abs(self.on_path_total() - self.latency) <= tol * max(1.0, abs(self.latency))

    def kind_totals(self, include_off_path: bool = False) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.off_path and not include_off_path:
                continue
            totals[span.kind] = totals.get(span.kind, 0.0) + span.duration
        return totals

    def describe(self) -> str:
        header = (
            f"trace #{self.trace_id} {self.op} @t={self.start:.3f}s "
            f"latency={self.latency * 1000:.3f}ms "
            f"{'ok' if self.success else 'FAILED'}"
        )
        lines = [header]
        for span in self.spans:
            marker = " (off-path)" if span.off_path else ""
            detail = f" [{span.detail}]" if span.detail else ""
            lines.append(
                f"  {span.kind:<16} {span.duration * 1000:9.3f}ms{detail}{marker}"
            )
        return "\n".join(lines)


class Tracer:
    """Collects traces for deterministically sampled operations.

    Only one operation is in flight at a time inside the discrete-event
    engine's op path (latencies are composed arithmetically, not by
    yielding to the scheduler mid-op), so a single ``current`` slot
    suffices — no context-variable machinery needed.
    """

    __slots__ = (
        "sample_interval",
        "max_traces",
        "traces",
        "telemetry",
        "_op_counts",
        "_current_spans",
        "_current_op",
        "_current_start",
        "_next_id",
    )

    def __init__(
        self,
        sample_interval: int = 64,
        max_traces: int = 20000,
        telemetry: Optional[object] = None,
    ) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        self.max_traces = max_traces
        self.traces: List[TraceRecord] = []
        self.telemetry = telemetry
        self._op_counts: Dict[str, int] = {}
        self._current_spans: Optional[List[Span]] = None
        self._current_op = ""
        self._current_start = 0.0
        self._next_id = 0

    # ------------------------------------------------------------ trace scope

    def maybe_begin(self, op: str, now: float) -> bool:
        """Open a trace if this op lands on the sampling lattice.

        The first operation of every stream is sampled (count 0 mod N), so
        even tiny runs produce traces.
        """
        count = self._op_counts.get(op, 0)
        self._op_counts[op] = count + 1
        if count % self.sample_interval != 0:
            return False
        if len(self.traces) >= self.max_traces:
            return False
        self._current_spans = []
        self._current_op = op
        self._current_start = now
        return True

    @property
    def active(self) -> bool:
        return self._current_spans is not None

    def add(self, kind: str, duration: float, detail: str = "", off_path: bool = False) -> None:
        """Record a child span on the open trace (no-op when none is open)."""
        spans = self._current_spans
        if spans is None:
            return
        spans.append(Span(kind=kind, duration=duration, detail=detail, off_path=off_path))

    def mark(self) -> int:
        """Position marker for :meth:`demote_since` (0 when no trace open)."""
        spans = self._current_spans
        return len(spans) if spans is not None else 0

    def demote_since(self, mark: int) -> None:
        """Flip every span recorded after ``mark`` to off-path.

        Used where the model composes parallel sub-operations by ``max``:
        the caller demotes all constituent spans and appends one on-path
        aggregate so the reconciliation invariant survives fan-out.
        """
        spans = self._current_spans
        if spans is None:
            return
        for span in spans[mark:]:
            span.off_path = True

    def keep_on_path(self, start: int, end: int) -> None:
        """Within [start, end), re-promote spans to on-path."""
        spans = self._current_spans
        if spans is None:
            return
        for span in spans[start:end]:
            span.off_path = False

    def end(self, latency: float, success: bool = True) -> Optional[TraceRecord]:
        """Close the open trace, feeding the telemetry span histograms."""
        spans = self._current_spans
        if spans is None:
            return None
        record = TraceRecord(
            trace_id=self._next_id,
            op=self._current_op,
            start=self._current_start,
            latency=latency,
            success=success,
            spans=spans,
        )
        self._next_id += 1
        self._current_spans = None
        self.traces.append(record)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.observe(f"trace.{record.op}.latency", latency)
            for span in spans:
                if not span.off_path:
                    telemetry.observe(f"span.{span.kind}", span.duration)
        return record

    def discard(self) -> None:
        """Drop the open trace without recording it."""
        self._current_spans = None

    # -------------------------------------------------------------- reporting

    def slowest(self, n: int = 3) -> List[TraceRecord]:
        return sorted(self.traces, key=lambda t: t.latency, reverse=True)[:n]

    def merge(self, other: "Tracer") -> "Tracer":
        """Concatenate another tracer's traces (sweep-fabric merge).

        Callers merge in run-index order, which makes the merged trace
        list identical at any worker count.  Trace ids are left as their
        per-run values; (op, start, run order) identifies a trace.
        """
        self.traces.extend(other.traces)
        for op, count in other._op_counts.items():
            self._op_counts[op] = self._op_counts.get(op, 0) + count
        return self

    # --------------------------------------------------------------- pickling

    def __getstate__(self) -> Dict[str, object]:
        # An in-flight span list never crosses a process boundary: runs
        # finish before their results are shipped back.
        return {
            "sample_interval": self.sample_interval,
            "max_traces": self.max_traces,
            "traces": self.traces,
            "op_counts": self._op_counts,
            "next_id": self._next_id,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.sample_interval = state["sample_interval"]  # type: ignore[assignment]
        self.max_traces = state["max_traces"]  # type: ignore[assignment]
        self.traces = state["traces"]  # type: ignore[assignment]
        self.telemetry = None
        self._op_counts = state["op_counts"]  # type: ignore[assignment]
        self._current_spans = None
        self._current_op = ""
        self._current_start = 0.0
        self._next_id = state["next_id"]  # type: ignore[assignment]
