"""Physical hosts and correlated co-tenant contention.

Every latency model in the simulator is i.i.d. per node, but the paper's
control loop runs on shared cloud hardware: co-tenants contend on the memory
bus, LLC, and NIC, so slowdowns are *correlated across the nodes that share a
host* and land on service time rather than queueing.  This module supplies
the two pieces of physics the rest of the system diagnoses and remediates
against:

* :class:`HostMap` — assigns logical nodes to shared physical hosts with a
  configurable tenancy bound and an avoid-set hook, which the cluster uses
  for replica-group anti-affinity (a group must never reach read/write quorum
  on one host).
* :class:`ContentionProcess` — a deterministic per-host co-tenant load
  process.  Like ``cloud/market.py`` it owns named RNG streams
  (``contention:{host_id}``) and extends each host's trace lazily with a
  FIXED number of variates per step, so paired-seed sweeps stay byte-identical
  at any worker count and forced episodes (which consume no RNG at all) never
  shift the spontaneous trace.  The factor it produces multiplies the *base
  service draw* of every colocated node simultaneously — correlated episodes,
  not i.i.d. noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class ContentionConfig:
    """Knobs for host tenancy, co-tenant episodes, and diagnosis thresholds.

    ``spontaneous_rate`` is the per-step probability that a host's co-tenants
    spontaneously start an episode; the default 0.0 means all contention is
    scripted through :meth:`ContentionProcess.force_episode` (the
    ``host_degradation`` fault), which keeps grid scenarios exactly
    reproducible from their fault plan alone.
    """

    tenancy: int = 4                  # max nodes sharing one physical host
    step_seconds: float = 60.0        # trace resolution / push cadence
    spontaneous_rate: float = 0.0     # P(episode starts) per host-step
    intensity_mean: float = 3.0       # median service inflation of an episode
    intensity_sigma: float = 0.3      # log-space spread of episode intensity
    max_episode_steps: int = 10       # spontaneous episode length cap
    # Diagnosis thresholds (consumed by the SLA monitor / controller).
    residual_threshold: float = 1.5   # host mean service residual => noisy
    quiet_utilisation: float = 0.7    # "low utilisation" bound for contention
    placement_aware: bool = True      # False = capacity-only ablation arm
    # How long an evacuated host stays off-limits to new placements.  An
    # evacuated host has no colocated nodes left, so its residual signal goes
    # dark; without a hold, the very next rent would land on the (empty,
    # least-occupied, still-degraded) host and re-poison the fleet.
    quarantine_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.tenancy < 1:
            raise ValueError(f"tenancy must be >= 1, got {self.tenancy}")
        if self.step_seconds <= 0:
            raise ValueError(
                f"step_seconds must be positive, got {self.step_seconds}")
        if not 0.0 <= self.spontaneous_rate <= 1.0:
            raise ValueError(
                f"spontaneous_rate must be in [0, 1], got {self.spontaneous_rate}")
        if self.intensity_mean < 1.0:
            raise ValueError(
                f"intensity_mean must be >= 1, got {self.intensity_mean}")
        if self.quarantine_seconds < 0:
            raise ValueError(
                f"quarantine_seconds must be >= 0, got {self.quarantine_seconds}")


def resolve_contention_config(knob) -> Optional[ContentionConfig]:
    """Normalise the engine's ``contention=`` knob.

    Accepts ``None``/``False`` (off), ``True`` (defaults), a dict (so
    ``ScenarioSpec.engine_knobs`` stays picklable pure data), or a ready
    :class:`ContentionConfig`.
    """
    if knob is None or knob is False:
        return None
    if knob is True:
        return ContentionConfig()
    if isinstance(knob, ContentionConfig):
        return knob
    if isinstance(knob, dict):
        return ContentionConfig(**knob)
    raise TypeError(f"contention must be bool, dict, or ContentionConfig, got {knob!r}")


class HostMap:
    """Assigns nodes to shared physical hosts, least-occupied first.

    Hosts are opened on demand (``host-0``, ``host-1``, ...) whenever every
    existing host is full or avoided.  Assignment is deterministic: among
    hosts with free capacity and not in the avoid set, pick the lowest
    occupancy, breaking ties by creation order.
    """

    def __init__(self, tenancy: int = 4) -> None:
        if tenancy < 1:
            raise ValueError(f"tenancy must be >= 1, got {tenancy}")
        self.tenancy = int(tenancy)
        self._host_of: Dict[str, str] = {}
        self._nodes_on: Dict[str, List[str]] = {}
        self._order: List[str] = []

    def assign(self, node_id: str, avoid: Iterable[str] = ()) -> str:
        """Place ``node_id`` on a host outside ``avoid``; returns the host id."""
        if node_id in self._host_of:
            raise ValueError(f"node {node_id!r} is already placed")
        avoid_set = set(avoid)
        best: Optional[str] = None
        for host in self._order:
            if host in avoid_set:
                continue
            occupancy = len(self._nodes_on[host])
            if occupancy >= self.tenancy:
                continue
            if best is None or occupancy < len(self._nodes_on[best]):
                best = host
        if best is None:
            best = f"host-{len(self._order)}"
            self._order.append(best)
            self._nodes_on[best] = []
        self._host_of[node_id] = best
        self._nodes_on[best].append(node_id)
        return best

    def release(self, node_id: str) -> None:
        """Forget ``node_id``'s placement (no-op if it was never placed)."""
        host = self._host_of.pop(node_id, None)
        if host is not None:
            self._nodes_on[host].remove(node_id)

    def host_of(self, node_id: str) -> Optional[str]:
        return self._host_of.get(node_id)

    def nodes_on(self, host_id: str) -> Tuple[str, ...]:
        return tuple(self._nodes_on.get(host_id, ()))

    def hosts(self) -> Tuple[str, ...]:
        return tuple(self._order)


class ContentionProcess:
    """Deterministic co-tenant service-time inflation, per physical host.

    Each host owns the RNG stream ``contention:{host_id}`` and a lazily
    extended factor trace at ``step_seconds`` resolution.  Every step consumes
    exactly three variates — ``uniform`` (episode start), ``normal``
    (intensity), ``uniform`` (length) — whether or not an episode fires, so
    the trace for a given (seed, host) pair is identical no matter when or
    how often it is interrogated.  Forced episodes (scripted faults) are kept
    as ``(start, end, intensity)`` windows outside the trace and consume no
    randomness, mirroring ``SpotMarket``'s forced storms.
    """

    def __init__(self, sim, host_map: HostMap,
                 config: Optional[ContentionConfig] = None) -> None:
        self._sim = sim
        self.host_map = host_map
        self.config = config or ContentionConfig()
        self._traces: Dict[str, List[float]] = {}
        # Spontaneous-episode generator state: (remaining_steps, intensity).
        self._state: Dict[str, Tuple[int, float]] = {}
        self._forced: Dict[str, List[Tuple[float, float, float]]] = {}

    # ------------------------------------------------------------ trace build

    def _ensure_steps(self, host_id: str, step: int) -> List[float]:
        trace = self._traces.get(host_id)
        if trace is None:
            trace = self._traces[host_id] = []
            self._state[host_id] = (0, 1.0)
        if len(trace) > step:
            return trace
        rng = self._sim.random.get(f"contention:{host_id}")
        cfg = self.config
        remaining, intensity = self._state[host_id]
        mu = math.log(cfg.intensity_mean)
        while len(trace) <= step:
            u_start = rng.uniform()
            z_intensity = rng.normal()
            u_length = rng.uniform()
            if remaining <= 0 and u_start < cfg.spontaneous_rate:
                intensity = max(1.0, math.exp(mu + cfg.intensity_sigma * z_intensity))
                remaining = 1 + int(u_length * max(0, cfg.max_episode_steps - 1))
            if remaining > 0:
                trace.append(intensity)
                remaining -= 1
            else:
                trace.append(1.0)
        self._state[host_id] = (remaining, intensity)
        return trace

    # ------------------------------------------------------------ public API

    def force_episode(self, host_id: str, start: float, duration: float,
                      intensity: float) -> None:
        """Script a contention episode on ``host_id`` (consumes no RNG)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if intensity < 1.0:
            raise ValueError(f"intensity must be >= 1, got {intensity}")
        self._forced.setdefault(host_id, []).append(
            (float(start), float(start) + float(duration), float(intensity)))

    def factor_at(self, host_id: str, time: float) -> float:
        """Service-time multiplier in force on ``host_id`` at ``time``."""
        step = max(0, int(time // self.config.step_seconds))
        factor = self._ensure_steps(host_id, step)[step]
        for start, end, intensity in self._forced.get(host_id, ()):
            if start <= time < end and intensity > factor:
                factor = intensity
        return factor

    def forced_episodes(self, host_id: str) -> Tuple[Tuple[float, float, float], ...]:
        return tuple(self._forced.get(host_id, ()))

    def install(self, cluster) -> None:
        """Push per-host factors onto colocated nodes every step.

        A single periodic event per *process* (not per host) keeps the event
        queue small; new nodes pick up their host's factor at the next tick,
        at most one step after placement.
        """

        def tick() -> None:
            now = self._sim.now
            for host in self.host_map.hosts():
                factor = self.factor_at(host, now)
                for node_id in self.host_map.nodes_on(host):
                    node = cluster.nodes.get(node_id)
                    if node is not None:
                        node.set_contention(factor)

        self._sim.schedule_periodic(self.config.step_seconds, tick,
                                    start_delay=0.0, name="contention-tick")
