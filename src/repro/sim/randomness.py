"""Reproducible random streams and the heavy-tailed distributions Web 2.0
workloads need (Zipfian key popularity, Pareto session lengths, log-normal
service times)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class RandomStreams:
    """A registry of named, independently-seeded random generators.

    Giving each component its own stream (``streams.get("arrivals")``,
    ``streams.get("service")``, ...) means changing how one component consumes
    randomness does not perturb every other component — experiments stay
    comparable across code changes.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            derived = np.random.SeedSequence([self._seed, _stable_hash(name)])
            self._streams[name] = np.random.default_rng(derived)
        return self._streams[name]


def _stable_hash(name: str) -> int:
    """A hash of ``name`` that is stable across Python processes.

    ``hash()`` is salted per-process for strings, so we roll a small FNV-1a
    instead.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class ZipfGenerator:
    """Draws integers in ``[0, n)`` with Zipfian popularity skew.

    Used for key popularity: a small number of users/objects receive most of
    the traffic, which is what makes hot-range detection and repartitioning
    in the storage substrate meaningful.

    Draws are pooled: uniforms are pre-drawn in blocks (a scalar generator
    call per op is the workload generator's main cost at closed-loop request
    volumes).  Because numpy fills uniform blocks element-by-element, the
    emitted index sequence is identical to scalar draws from the same stream
    — though the *stream consumption point* moves earlier, which matters only
    if the same generator object feeds other consumers too.
    """

    POOL_BLOCK = 1024

    def __init__(self, n: int, theta: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0.0 <= theta < 1.0:
            raise ValueError(f"theta must be in [0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        ranks = np.arange(1, n + 1, dtype=float)
        weights = 1.0 / np.power(ranks, theta)
        self._cdf = np.cumsum(weights) / np.sum(weights)
        # The uniforms are kept for draw_many's stream continuation; their
        # searchsorted indices are computed vectorized at block-refill time
        # so draw() itself is a list lookup.
        self._pool: np.ndarray = _EMPTY
        self._pool_indices: List[int] = []
        self._pool_index = 0

    def _refill(self) -> None:
        self._pool = self._rng.random(self.POOL_BLOCK)
        self._pool_indices = np.searchsorted(self._cdf, self._pool).tolist()
        self._pool_index = 0

    def draw(self) -> int:
        """Draw a single item index (0-based, 0 is the most popular)."""
        index = self._pool_index
        if index >= self._pool.shape[0]:
            self._refill()
            index = 0
        self._pool_index = index + 1
        return self._pool_indices[index]

    def draw_many(self, count: int) -> np.ndarray:
        """Draw ``count`` item indices at once, continuing the pooled stream."""
        u = np.empty(count)
        available = self._pool.shape[0] - self._pool_index
        take = min(available, count) if available > 0 else 0
        if take:
            u[:take] = self._pool[self._pool_index:self._pool_index + take]
            self._pool_index += take
        if take < count:
            u[take:] = self._rng.random(count - take)
        return np.searchsorted(self._cdf, u).astype(int)


_EMPTY = np.empty(0)


def pareto_sample(rng: np.random.Generator, shape: float, scale: float) -> float:
    """One draw from a Pareto distribution with the given shape and scale."""
    if shape <= 0 or scale <= 0:
        raise ValueError("pareto shape and scale must be positive")
    return float(scale * (1.0 + rng.pareto(shape)))


def lognormal_sample(rng: np.random.Generator, median: float, sigma: float) -> float:
    """One draw from a log-normal distribution parameterised by its median."""
    if median <= 0:
        raise ValueError("median must be positive")
    return float(rng.lognormal(mean=np.log(median), sigma=sigma))


def exponential_sample(rng: np.random.Generator, mean: float) -> float:
    """One draw from an exponential distribution with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return float(rng.exponential(mean))


def weighted_choice(rng: np.random.Generator, weights: Dict[str, float]) -> str:
    """Pick a key from ``weights`` with probability proportional to its value."""
    if not weights:
        raise ValueError("weights must not be empty")
    keys = list(weights.keys())
    values = np.array([weights[k] for k in keys], dtype=float)
    if np.any(values < 0):
        raise ValueError("weights must be non-negative")
    total = values.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    probabilities = values / total
    index = rng.choice(len(keys), p=probabilities)
    return keys[int(index)]


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a shuffled copy of ``items`` without mutating the original."""
    copy = list(items)
    rng.shuffle(copy)
    return copy
