"""Discrete-event simulation kernel.

Everything in the reproduction that involves time — request latency,
replication lag, instance boot delay, billing hours — runs against a virtual
clock managed by :class:`Simulator`.  The kernel is deliberately small:
events, an event queue, a clock, reproducible random streams, latency
distributions, and a network model with injectable partitions and congestion.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    ParetoLatency,
    QueueingLatency,
)
from repro.sim.network import Link, NetworkModel, Partition

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Simulator",
    "RandomStreams",
    "LatencyModel",
    "ConstantLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "ParetoLatency",
    "EmpiricalLatency",
    "QueueingLatency",
    "Link",
    "NetworkModel",
    "Partition",
]
