"""Events and the event queue used by the simulator.

Events are ordered by (time, priority, sequence number).  The sequence number
makes ordering of simultaneous events deterministic (insertion order), which
keeps every experiment in the repository reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time (seconds) at which the event fires.
        priority: tie-breaker for events at the same time; lower fires first.
        seq: insertion sequence number, assigned by the queue.
        action: zero-argument callable run when the event fires.
        name: optional label used in traces and error messages.
    """

    time: float
    priority: int = 0
    seq: int = field(default=0, compare=True)
    action: Optional[Callable[[], Any]] = field(default=None, compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it reaches the front."""
        self.cancelled = True

    def fire(self) -> Any:
        """Run the event's action (no-op for cancelled or action-less events)."""
        if self.cancelled or self.action is None:
            return None
        return self.action()


class EventQueue:
    """A priority queue of :class:`Event` ordered by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            name=name,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises ``IndexError`` if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
