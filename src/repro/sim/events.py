"""Events and the event queue used by the simulator.

Events are ordered by (time, priority, sequence number).  The sequence number
makes ordering of simultaneous events deterministic (insertion order), which
keeps every experiment in the repository reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    A plain ``__slots__`` class rather than a dataclass: events are the
    single most-allocated object in a simulation, and the heap compares them
    on every push/pop, so construction and ``__lt__`` are kept hand-written
    (the dataclass-generated compare builds a tuple per operand per
    comparison).

    Attributes:
        time: simulated time (seconds) at which the event fires.
        priority: tie-breaker for events at the same time; lower fires first.
        seq: insertion sequence number, assigned by the queue.
        action: zero-argument callable run when the event fires.
        name: optional label used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "action", "name", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: int = 0,
        action: Optional[Callable[[], Any]] = None,
        name: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, name={self.name!r}, cancelled={self.cancelled!r})")

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it reaches the front."""
        self.cancelled = True

    def fire(self) -> Any:
        """Run the event's action (no-op for cancelled or action-less events)."""
        if self.cancelled or self.action is None:
            return None
        return self.action()


class EventQueue:
    """A priority queue of :class:`Event` ordered by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time, priority, next(self._counter), action, name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises ``IndexError`` if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def pop_due(self, end_time: float) -> Optional[Event]:
        """Pop and return the earliest live event due at or before ``end_time``.

        Returns None (popping nothing) when the next live event is later than
        ``end_time`` or the queue is empty.  One call replaces the
        ``peek_time`` + ``pop`` pair in the simulator's dispatch loop.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if event.time > end_time:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
