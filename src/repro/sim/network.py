"""Network model: links between nodes/datacenters, partitions, congestion.

The SCADS paper's arbitration story (Section 3.3.1) hinges on what the system
does when "two datacenters become disconnected" or links are congested; this
module provides the substrate those experiments inject faults into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

import numpy as np

from repro.sim.latency import LatencyModel, LogNormalLatency


class NetworkPartitionError(RuntimeError):
    """Raised when a message is sent across an active network partition."""


@dataclass
class Link:
    """A directed link between two endpoints (nodes or datacenters)."""

    src: str
    dst: str
    latency: LatencyModel = field(default_factory=lambda: LogNormalLatency(0.0005, 0.3))
    congestion_factor: float = 1.0

    def delay(self, rng: np.random.Generator) -> float:
        """One-way message delay on this link, including congestion."""
        return self.latency.sample(rng) * self.congestion_factor


@dataclass(frozen=True)
class Partition:
    """A network partition separating two groups of endpoints."""

    group_a: FrozenSet[str]
    group_b: FrozenSet[str]

    def separates(self, src: str, dst: str) -> bool:
        """True if ``src`` and ``dst`` are on opposite sides of the partition."""
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


class NetworkModel:
    """Tracks links, active partitions, and per-link congestion.

    Endpoints that have no explicit link use the default latency model; this
    keeps small experiments simple while still letting the failure-injection
    benches congest or cut specific paths.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        default_latency: Optional[LatencyModel] = None,
    ) -> None:
        self._rng = rng
        self._default_latency = default_latency or LogNormalLatency(0.0005, 0.3)
        self._links: Dict[Tuple[str, str], Link] = {}
        self._partitions: Set[Partition] = set()
        self._congestion: Dict[Tuple[str, str], float] = {}

    def add_link(self, link: Link) -> None:
        """Register an explicit link (overrides the default latency model)."""
        self._links[(link.src, link.dst)] = link

    def set_congestion(self, src: str, dst: str, factor: float) -> None:
        """Multiply delays on ``src -> dst`` by ``factor`` (1.0 clears it)."""
        if factor < 1.0:
            raise ValueError(f"congestion factor must be >= 1.0, got {factor}")
        if factor == 1.0:
            self._congestion.pop((src, dst), None)
        else:
            self._congestion[(src, dst)] = float(factor)

    def partition(self, group_a: Set[str], group_b: Set[str]) -> Partition:
        """Install a partition separating the two endpoint groups."""
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise ValueError(f"partition groups overlap: {sorted(overlap)}")
        part = Partition(frozenset(group_a), frozenset(group_b))
        self._partitions.add(part)
        return part

    def heal(self, partition: Partition) -> None:
        """Remove a previously installed partition."""
        self._partitions.discard(partition)

    def heal_all(self) -> None:
        """Remove every active partition."""
        self._partitions.clear()

    def is_reachable(self, src: str, dst: str) -> bool:
        """True unless an active partition separates the endpoints."""
        if not self._partitions:
            return True
        return not any(p.separates(src, dst) for p in self._partitions)

    def delay(self, src: str, dst: str) -> float:
        """One-way message delay from ``src`` to ``dst``.

        Raises :class:`NetworkPartitionError` if the endpoints are partitioned.
        The healthy-network case (no partitions, no explicit links, no
        congestion) is the per-request hot path and skips every lookup.
        """
        if src == dst:
            return 0.0
        if self._partitions and not self.is_reachable(src, dst):
            raise NetworkPartitionError(f"{src} cannot reach {dst}: network partition")
        if self._links:
            link = self._links.get((src, dst))
            base = (link.delay(self._rng) if link is not None
                    else self._default_latency.sample(self._rng))
        else:
            base = self._default_latency.sample(self._rng)
        if self._congestion:
            return base * self._congestion.get((src, dst), 1.0)
        return base
