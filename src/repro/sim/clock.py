"""Virtual clock for discrete-event simulation.

The clock only moves forward, and only when the simulator advances it.  All
SCADS components take a clock (or the simulator that owns one) rather than
reading the wall clock, which is what makes the wall-clock consistency bounds
of the paper testable deterministically.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class VirtualClock:
    """A monotonically non-decreasing simulated clock, in seconds.

    ``now`` is a plain attribute (read on every event and every request, so
    property overhead matters); it must only be moved through
    :meth:`advance_to` / :meth:`advance_by`, which enforce monotonicity.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at a negative time: {start}")
        self.now = float(start)

    def advance_to(self, timestamp: float) -> float:
        """Move the clock to ``timestamp``.

        Raises :class:`ClockError` if the timestamp is in the past; advancing
        to the current time is a no-op and is allowed (simultaneous events).
        """
        if timestamp < self.now:
            raise ClockError(
                f"cannot move clock backwards from {self.now:.6f} to {timestamp:.6f}"
            )
        self.now = float(timestamp)
        return self.now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ClockError(f"cannot advance the clock by a negative delta: {delta}")
        self.now += float(delta)
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.6f})"
