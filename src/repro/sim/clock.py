"""Virtual clock for discrete-event simulation.

The clock only moves forward, and only when the simulator advances it.  All
SCADS components take a clock (or the simulator that owns one) rather than
reading the wall clock, which is what makes the wall-clock consistency bounds
of the paper testable deterministically.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class VirtualClock:
    """A monotonically non-decreasing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at a negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the simulation epoch."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock to ``timestamp``.

        Raises :class:`ClockError` if the timestamp is in the past; advancing
        to the current time is a no-op and is allowed (simultaneous events).
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now:.6f} to {timestamp:.6f}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ClockError(f"cannot advance the clock by a negative delta: {delta}")
        self._now += float(delta)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
