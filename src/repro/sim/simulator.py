"""The discrete-event simulator driving every experiment in the repository."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams


class Simulator:
    """Owns the virtual clock, the event queue, and the random streams.

    Components schedule work with :meth:`schedule` / :meth:`schedule_at` and
    the experiment harness drives time forward with :meth:`run_until` or
    :meth:`run`.  Periodic activities (SLA monitoring, provisioning loops,
    billing ticks) use :meth:`schedule_periodic`.
    """

    def __init__(self, seed: int = 0, start: float = 0.0) -> None:
        self.clock = VirtualClock(start=start)
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._event_count

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.clock.now + delay, action, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, which is before now ({self.now:.6f})"
            )
        return self.queue.push(time, action, priority=priority, name=name)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], Any],
        start_delay: Optional[float] = None,
        name: str = "",
    ) -> Callable[[], None]:
        """Run ``action`` every ``interval`` seconds until cancelled.

        Returns a zero-argument callable that cancels the periodic activity.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        state = {"cancelled": False, "event": None}

        def tick() -> None:
            if state["cancelled"]:
                return
            action()
            state["event"] = self.schedule(interval, tick, name=name)

        first_delay = interval if start_delay is None else start_delay
        state["event"] = self.schedule(first_delay, tick, name=name)

        def cancel() -> None:
            state["cancelled"] = True
            event = state["event"]
            if event is not None:
                self.queue.cancel(event)

        return cancel

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        event.fire()
        self._event_count += 1
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> float:
        """Process events until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are processed.  The clock is
        left at ``end_time`` even if the queue drains earlier, so that
        duration-based accounting (billing, SLA windows) sees the full span.
        The dispatch loop is inlined (rather than calling :meth:`step`) —
        it is the innermost loop of every experiment.
        """
        processed = 0
        queue = self.queue
        clock = self.clock
        while True:
            event = queue.pop_due(end_time)
            if event is None:
                break
            clock.advance_to(event.time)
            action = event.action
            if action is not None:
                action()
            self._event_count += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if clock.now < end_time:
            clock.advance_to(end_time)
        return clock.now

    def run(self, max_events: int = 1_000_000) -> float:
        """Process events until the queue is empty or ``max_events`` fire."""
        processed = 0
        while self.queue and processed < max_events:
            self.step()
            processed += 1
        return self.now
