"""Service-time models for simulated storage nodes and network hops.

The paper's performance SLAs are phrased over latency percentiles
("99.9 % of reads under 100 ms"), so the fidelity that matters here is the
*tail* behaviour of per-request service times and how it degrades with load.
``QueueingLatency`` captures the load-dependent part with an M/M/1-style
utilisation factor on top of any base distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class LatencyModel:
    """Base class: a latency model returns a per-request service time."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic (or estimated) mean service time, used by the ML features."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Always the same service time; useful in tests."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


class ExponentialLatency(LatencyModel):
    """Memoryless service times with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def mean(self) -> float:
        return self._mean


class LogNormalLatency(LatencyModel):
    """Log-normal service times — the default for storage node reads/writes.

    Parameterised by median and sigma because that is how production latency
    distributions are usually characterised; the tail index grows with sigma.
    """

    def __init__(self, median: float, sigma: float = 0.5) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(mean=np.log(self.median), sigma=self.sigma))

    def mean(self) -> float:
        return float(self.median * np.exp(self.sigma**2 / 2.0))


class ParetoLatency(LatencyModel):
    """Heavy-tailed service times for modelling stragglers / 'unlucky' requests."""

    def __init__(self, scale: float, shape: float = 2.5) -> None:
        if scale <= 0 or shape <= 1.0:
            raise ValueError("scale must be > 0 and shape must be > 1 for a finite mean")
        self.scale = float(scale)
        self.shape = float(shape)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * (1.0 + rng.pareto(self.shape)))

    def mean(self) -> float:
        return self.scale * self.shape / (self.shape - 1.0)


class EmpiricalLatency(LatencyModel):
    """Resamples from a recorded set of latencies (trace-driven replay)."""

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("empirical latency model needs at least one sample")
        if np.any(arr < 0):
            raise ValueError("latency samples must be non-negative")
        self._samples = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._samples[rng.integers(0, self._samples.size)])

    def mean(self) -> float:
        return float(self._samples.mean())


class QueueingLatency(LatencyModel):
    """Load-dependent latency: base service time inflated by queueing delay.

    Approximates an M/M/1 queue: with utilisation ``rho`` the expected
    residence time is ``service / (1 - rho)``.  Utilisation is supplied by
    the owner (a storage node tracks its own offered load vs. capacity), so
    the model itself stays stateless.  Utilisation is clamped just below 1 so
    an overloaded node returns very large — but finite — latencies, which is
    what lets the SLA monitor observe the violation and react.
    """

    MAX_UTILISATION = 0.99

    def __init__(self, base: LatencyModel) -> None:
        self.base = base
        self._utilisation = 0.0

    @property
    def utilisation(self) -> float:
        return self._utilisation

    def set_utilisation(self, rho: float) -> None:
        """Update the utilisation used to inflate subsequent samples."""
        if rho < 0:
            raise ValueError(f"utilisation must be non-negative, got {rho}")
        self._utilisation = min(float(rho), self.MAX_UTILISATION)

    def sample(self, rng: np.random.Generator) -> float:
        service = self.base.sample(rng)
        return service / (1.0 - self._utilisation)

    def mean(self) -> float:
        return self.base.mean() / (1.0 - self._utilisation)


def percentile_of(model: LatencyModel, rng: np.random.Generator,
                  percentile: float, samples: int = 2000) -> float:
    """Monte-Carlo estimate of a percentile of a latency model.

    Used by the provisioning planner to translate a candidate configuration
    into an expected SLA percentile before committing to it.
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    draws = np.array([model.sample(rng) for _ in range(samples)])
    return float(np.percentile(draws, percentile))
