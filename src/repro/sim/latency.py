"""Service-time models for simulated storage nodes and network hops.

The paper's performance SLAs are phrased over latency percentiles
("99.9 % of reads under 100 ms"), so the fidelity that matters here is the
*tail* behaviour of per-request service times and how it degrades with load.
``QueueingLatency`` captures the load-dependent part with an M/M/1-style
utilisation factor on top of any base distribution.

Sampling is *pooled*: scalar draws from a ``numpy.random.Generator`` cost
over a microsecond each in call overhead, which dominates simulator
throughput at closed-loop request volumes.  Each model therefore pre-draws a
vectorized block per generator and hands values out one at a time.  Because
numpy fills distribution arrays element-by-element from the same bit stream,
the pooled sequence is *identical* to the scalar-draw sequence for a given
stream (property-tested in ``tests/test_hot_path_perf.py``) — only the
*consumption point* of the underlying bit stream moves earlier.  Streams
shared between several models (e.g. the network stream feeding every link)
will interleave their block prefetches differently than scalar draws did, so
cross-model interleavings on a shared stream are not preserved.

Distribution parameters are read when a block is drawn, so models must not
be re-parameterised in place mid-stream (construct a new model instead).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np


class LatencyModel:
    """Base class: a latency model returns a per-request service time.

    Subclasses implement :meth:`_draw_block` (a vectorized draw of ``size``
    samples); the base class manages one sample pool per generator so that
    :meth:`sample` is an array lookup in the common case.
    """

    POOL_BLOCK = 1024

    # Lazily created so subclasses need not call ``super().__init__``.
    _pools: Optional[Dict[np.random.Generator, list]] = None

    def _draw_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples in one vectorized call."""
        raise NotImplementedError

    def _pool_for(self, rng: np.random.Generator) -> list:
        pools = self._pools
        if pools is None:
            pools = self._pools = {}
        pool = pools.get(rng)
        if pool is None:
            pool = pools[rng] = [_EMPTY_BLOCK, 0]
        return pool

    def sample(self, rng: np.random.Generator) -> float:
        """One service time, served from the per-generator pool."""
        pools = self._pools
        if pools is None:
            pools = self._pools = {}
        pool = pools.get(rng)
        if pool is None:
            pool = pools[rng] = [_EMPTY_BLOCK, 0]
        block, index = pool
        if index >= block.shape[0]:
            block = pool[0] = self._draw_block(rng, self.POOL_BLOCK)
            index = 0
        pool[1] = index + 1
        return float(block[index])

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` service times in draw order, continuing the pooled stream."""
        if count <= 0:
            return np.empty(0)
        pool = self._pool_for(rng)
        block, index = pool
        available = block.shape[0] - index
        if available >= count:
            pool[1] = index + count
            return block[index:index + count].copy()
        out = np.empty(count)
        if available > 0:
            out[:available] = block[index:]
        pool[0] = _EMPTY_BLOCK
        pool[1] = 0
        out[available:] = self._draw_block(rng, count - available)
        return out

    def mean(self) -> float:
        """Analytic (or estimated) mean service time, used by the ML features."""
        raise NotImplementedError


_EMPTY_BLOCK = np.empty(0)


class ConstantLatency(LatencyModel):
    """Always the same service time; useful in tests.  Consumes no randomness."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.value)

    def mean(self) -> float:
        return self.value


class ExponentialLatency(LatencyModel):
    """Memoryless service times with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def _draw_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size=size)

    def mean(self) -> float:
        return self._mean


class LogNormalLatency(LatencyModel):
    """Log-normal service times — the default for storage node reads/writes.

    Parameterised by median and sigma because that is how production latency
    distributions are usually characterised; the tail index grows with sigma.
    ``mu = log(median)`` is cached at construction instead of being
    recomputed on every sample.
    """

    def __init__(self, median: float, sigma: float = 0.5) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(self.median)

    def _draw_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(mean=self._mu, sigma=self.sigma, size=size)

    def mean(self) -> float:
        return float(self.median * np.exp(self.sigma**2 / 2.0))


class ParetoLatency(LatencyModel):
    """Heavy-tailed service times for modelling stragglers / 'unlucky' requests."""

    def __init__(self, scale: float, shape: float = 2.5) -> None:
        if scale <= 0 or shape <= 1.0:
            raise ValueError("scale must be > 0 and shape must be > 1 for a finite mean")
        self.scale = float(scale)
        self.shape = float(shape)

    def _draw_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * (1.0 + rng.pareto(self.shape, size=size))

    def mean(self) -> float:
        return self.scale * self.shape / (self.shape - 1.0)


class EmpiricalLatency(LatencyModel):
    """Resamples from a recorded set of latencies (trace-driven replay)."""

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("empirical latency model needs at least one sample")
        if np.any(arr < 0):
            raise ValueError("latency samples must be non-negative")
        self._samples = arr

    def _draw_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._samples[rng.integers(0, self._samples.size, size=size)]

    def mean(self) -> float:
        return float(self._samples.mean())


class QueueingLatency(LatencyModel):
    """Load-dependent latency: base service time inflated by queueing delay.

    Approximates an M/M/1 queue: with utilisation ``rho`` the expected
    residence time is ``service / (1 - rho)``.  Utilisation is supplied by
    the owner (a storage node tracks its own offered load vs. capacity), so
    the model itself stays stateless.  Utilisation is clamped just below 1 so
    an overloaded node returns very large — but finite — latencies, which is
    what lets the SLA monitor observe the violation and react.

    The utilisation factor is applied per sample (it changes between draws),
    so pooling lives in the *base* model and the pooled stream stays
    identical to scalar draws from the base distribution.

    A second multiplier, *contention*, models co-tenant interference on a
    shared physical host (see ``repro.sim.hosts``).  It inflates the base
    service draw itself — so ``split_service`` decomposition attributes the
    inflation to the *service* span kind, not queueing — and consumes no
    randomness, so contention-off runs are byte-identical.  While contention
    tracking is active the model also maintains an EWMA *service residual*:
    observed (contended) base service time relative to the base model's
    analytic mean.  It sits near 1.0 on a quiet host and approaches the
    contention factor under interference; the per-host health estimator
    aggregates it to name noisy hosts without peeking at the injected
    ground-truth factor.
    """

    MAX_UTILISATION = 0.99
    RESIDUAL_ALPHA = 0.05

    def __init__(self, base: LatencyModel) -> None:
        self.base = base
        self._utilisation = 0.0
        self._contention = 1.0
        self._tracking = False
        self._residual = 1.0
        self._base_mean: Optional[float] = None

    @property
    def utilisation(self) -> float:
        return self._utilisation

    @property
    def contention(self) -> float:
        return self._contention

    def set_utilisation(self, rho: float) -> None:
        """Update the utilisation used to inflate subsequent samples."""
        if rho < 0:
            raise ValueError(f"utilisation must be non-negative, got {rho}")
        self._utilisation = float(rho) if rho < self.MAX_UTILISATION else self.MAX_UTILISATION

    def set_contention(self, factor: float) -> None:
        """Update the co-tenant service inflation factor (>= 1).

        First call arms residual tracking: the contention layer pushes a
        factor (possibly 1.0) to every placed node each step, so tracking is
        active exactly in contention-enabled runs and the sample path is
        untouched otherwise.
        """
        if factor < 1.0:
            raise ValueError(f"contention factor must be >= 1, got {factor}")
        self._contention = float(factor)
        if not self._tracking:
            self._tracking = True
            self._base_mean = self.base.mean()

    def service_residual(self) -> float:
        """EWMA of observed base service time over the base model's mean."""
        return self._residual

    def sample(self, rng: np.random.Generator) -> float:
        # Inlined pooled lookup on the base model: this is the per-request
        # service-time path for every storage node.
        base = self.base
        pools = base._pools
        if pools is None:
            service = base.sample(rng) * self._contention
        else:
            pool = pools.get(rng)
            if pool is None:
                service = base.sample(rng) * self._contention
            else:
                block, index = pool
                if index >= block.shape[0]:
                    block = pool[0] = base._draw_block(rng, base.POOL_BLOCK)
                    index = 0
                pool[1] = index + 1
                service = float(block[index]) * self._contention
        if self._tracking:
            self._residual += self.RESIDUAL_ALPHA * (
                service / self._base_mean - self._residual)
        return service / (1.0 - self._utilisation)

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        services = self.base.sample_many(rng, count) * self._contention
        if self._tracking and count > 0:
            # One EWMA step per sample, compounded: the block mean observed
            # with weight 1 - (1 - alpha)^count.
            weight = 1.0 - (1.0 - self.RESIDUAL_ALPHA) ** count
            self._residual += weight * (
                float(services.mean()) / self._base_mean - self._residual)
        return services / (1.0 - self._utilisation)

    def mean(self) -> float:
        return self.base.mean() * self._contention / (1.0 - self._utilisation)


def percentile_of(model: LatencyModel, rng: np.random.Generator,
                  percentile: float, samples: int = 2000) -> float:
    """Monte-Carlo estimate of a percentile of a latency model.

    Used by the provisioning planner to translate a candidate configuration
    into an expected SLA percentile before committing to it.  Draws are
    vectorized through :meth:`LatencyModel.sample_many`, which continues the
    model's pooled stream in draw order.
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    draws = model.sample_many(rng, samples)
    return float(np.percentile(draws, percentile))
