"""Reference applications built on the public SCADS API.

These are the applications the paper's motivation section describes (a
social-network site with friends, profiles, statuses, and birthday lookups).
The examples and benchmarks drive them with the workload substrate.
"""

from repro.apps.social_network import SocialNetworkApp

__all__ = ["SocialNetworkApp"]
