"""The canonical social-network application from the paper's running example.

It declares the schema (profiles, friendships, statuses), registers the
paper's query templates — find friends, friends of friends, and friends with
upcoming birthdays — and exposes application-level operations
(add user, add friendship, post status, view pages) that the workload
generator can drive.  Everything goes through the public :class:`Scads` API;
the app never touches the storage substrate directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.core.engine import OperationOutcome, Scads
from repro.core.query.executor import QueryResult
from repro.core.schema import EntitySchema, Field, FieldType, Relationship
from repro.workloads.opmix import Operation, OperationKind
from repro.workloads.social_graph import SocialGraph

# The paper's example bound: Facebook limits users to 5 000 friends.
DEFAULT_FRIEND_CAP = 5000
DEFAULT_STATUS_CAP = 1000


@dataclass
class AppStats:
    """Counters of application-level operations executed."""

    users_created: int = 0
    friendships_created: int = 0
    statuses_posted: int = 0
    profile_updates: int = 0
    page_views: int = 0
    failed_operations: int = 0


class SocialNetworkApp:
    """Friends, profiles, statuses, and birthday queries on top of SCADS."""

    def __init__(
        self,
        engine: Scads,
        friend_cap: int = DEFAULT_FRIEND_CAP,
        status_cap: int = DEFAULT_STATUS_CAP,
        page_size: int = 20,
        register_friends_of_friends: bool = True,
    ) -> None:
        self.engine = engine
        self.friend_cap = friend_cap
        self.status_cap = status_cap
        self.page_size = page_size
        self.stats = AppStats()
        self._declare_schema()
        self._register_queries(register_friends_of_friends)

    # -------------------------------------------------------------------- schema

    def _declare_schema(self) -> None:
        self.engine.register_entity(
            EntitySchema(
                name="profiles",
                key_fields=[Field("user_id", FieldType.STRING)],
                value_fields=[
                    Field("name", FieldType.STRING),
                    Field("birthday", FieldType.STRING),
                    Field("hometown", FieldType.STRING),
                ],
            )
        )
        self.engine.register_entity(
            EntitySchema(
                name="friendships",
                key_fields=[
                    Field("f1", FieldType.STRING),
                    Field("f2", FieldType.STRING),
                ],
                max_per_partition=self.friend_cap,
                column_bounds={"f2": self.friend_cap},
            )
        )
        self.engine.register_entity(
            EntitySchema(
                name="statuses",
                key_fields=[
                    Field("user_id", FieldType.STRING),
                    Field("status_id", FieldType.INT),
                ],
                value_fields=[Field("text", FieldType.STRING)],
                max_per_partition=self.status_cap,
            )
        )
        self.engine.register_relationship(
            Relationship(
                name="friends",
                from_entity="profiles",
                to_entity="profiles",
                max_cardinality=self.friend_cap,
            )
        )

    def _register_queries(self, register_friends_of_friends: bool) -> None:
        # Figure 3 row 1: the friend index.
        self.engine.register_query(
            "friends",
            f"SELECT * FROM friendships WHERE f1 = <user_id> LIMIT {self.friend_cap}",
        )
        # Figure 3 rows 3-4: friends with upcoming birthdays (the paper's
        # example template), answered by the birthday index.
        self.engine.register_query(
            "friend_birthdays",
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <user_id> ORDER BY p.birthday "
            f"LIMIT {self.page_size}",
        )
        # Recent statuses for a profile page.
        self.engine.register_query(
            "recent_statuses",
            "SELECT * FROM statuses WHERE user_id = <user_id> "
            f"ORDER BY status_id DESC LIMIT {self.page_size}",
        )
        # Figure 3 row 2: friends of friends (bounded, needs a LIMIT to read).
        if register_friends_of_friends:
            self.engine.register_query(
                "friends_of_friends",
                "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
                "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <user_id> "
                f"LIMIT {self.page_size}",
            )

    # ------------------------------------------------------------------- writes

    def create_user(self, user_id: str, name: str, birthday: str,
                    hometown: str = "") -> OperationOutcome:
        """Add a user profile."""
        outcome = self.engine.put(
            "profiles",
            {"user_id": user_id, "name": name, "birthday": birthday, "hometown": hometown},
            session_id=user_id,
        )
        self._count(outcome)
        if outcome.success:
            self.stats.users_created += 1
        return outcome

    def add_friendship(self, a: str, b: str) -> List[OperationOutcome]:
        """Create a (symmetric) friendship: both directions are stored."""
        if a == b:
            raise ValueError("a user cannot befriend themselves")
        outcomes = [
            self.engine.put("friendships", {"f1": a, "f2": b}, session_id=a),
            self.engine.put("friendships", {"f1": b, "f2": a}, session_id=b),
        ]
        for outcome in outcomes:
            self._count(outcome)
        if all(o.success for o in outcomes):
            self.stats.friendships_created += 1
        return outcomes

    def remove_friendship(self, a: str, b: str) -> List[OperationOutcome]:
        """Remove both directions of a friendship."""
        outcomes = [
            self.engine.delete("friendships", (a, b), session_id=a),
            self.engine.delete("friendships", (b, a), session_id=b),
        ]
        for outcome in outcomes:
            self._count(outcome)
        return outcomes

    def post_status(self, user_id: str, status_id: int, text: str) -> OperationOutcome:
        """Post a status update."""
        outcome = self.engine.put(
            "statuses",
            {"user_id": user_id, "status_id": status_id, "text": text},
            session_id=user_id,
        )
        self._count(outcome)
        if outcome.success:
            self.stats.statuses_posted += 1
        return outcome

    def update_profile(self, user_id: str, **fields: Any) -> OperationOutcome:
        """Update profile fields (e.g. hometown or birthday)."""
        current = self.engine.get("profiles", (user_id,), session_id=user_id)
        row = dict(current.row or {"user_id": user_id, "name": "", "birthday": "01-01"})
        row.update(fields)
        row["user_id"] = user_id
        outcome = self.engine.put("profiles", row, session_id=user_id)
        self._count(outcome)
        if outcome.success:
            self.stats.profile_updates += 1
        return outcome

    # -------------------------------------------------------------------- reads

    def view_profile(self, viewer_id: str, user_id: str) -> OperationOutcome:
        """Read one profile (a page view)."""
        outcome = self.engine.get("profiles", (user_id,), session_id=viewer_id)
        self.stats.page_views += 1
        self._count(outcome)
        return outcome

    def friends_page(self, user_id: str) -> QueryResult:
        """The user's friend list (friend index lookup)."""
        self.stats.page_views += 1
        return self.engine.query("friends", {"user_id": user_id}, session_id=user_id)

    def birthdays_page(self, user_id: str) -> QueryResult:
        """Friends with upcoming birthdays (the paper's example query)."""
        self.stats.page_views += 1
        return self.engine.query("friend_birthdays", {"user_id": user_id}, session_id=user_id)

    def friends_of_friends_page(self, user_id: str) -> QueryResult:
        """People the user might know (friends-of-friends index lookup)."""
        self.stats.page_views += 1
        return self.engine.query("friends_of_friends", {"user_id": user_id}, session_id=user_id)

    def statuses_page(self, user_id: str) -> QueryResult:
        """The user's recent statuses, newest first."""
        self.stats.page_views += 1
        return self.engine.query("recent_statuses", {"user_id": user_id}, session_id=user_id)

    # --------------------------------------------------------------- bulk loading

    def load_graph(self, graph: SocialGraph, flush_every: int = 5000) -> None:
        """Bulk-load a synthetic social graph (profiles plus friendships).

        The maintenance queue is drained periodically during loading so the
        bulk load does not build an unbounded backlog before the experiment
        proper starts.
        """
        writes = 0
        for user_id in graph.users():
            profile = graph.profile(user_id)
            self.create_user(user_id, profile.name, profile.birthday, profile.hometown)
            writes += 1
            if writes % flush_every == 0:
                self.engine.settle(seconds=1.0)
        for a, b in graph.friendships():
            self.add_friendship(a, b)
            writes += 2
            if writes % flush_every == 0:
                self.engine.settle(seconds=1.0)
        self.engine.settle(seconds=2.0)

    # ----------------------------------------------------------- workload driving

    def execute(self, operation: Operation) -> None:
        """Execute one workload operation (the LoadGenerator callback)."""
        kind = operation.kind
        if kind is OperationKind.READ_PROFILE:
            self.view_profile(operation.user_id, operation.target_id or operation.user_id)
        elif kind is OperationKind.READ_FRIENDS:
            self.friends_page(operation.user_id)
        elif kind is OperationKind.READ_FRIEND_BIRTHDAYS:
            self.birthdays_page(operation.user_id)
        elif kind is OperationKind.READ_FRIENDS_OF_FRIENDS:
            if "friends_of_friends" in self.engine.query_names():
                self.friends_of_friends_page(operation.user_id)
            else:
                self.friends_page(operation.user_id)
        elif kind is OperationKind.POST_STATUS:
            self.stats.statuses_posted += 0  # counted in post_status
            status_id = self.stats.statuses_posted + self.stats.page_views + 1
            text = (operation.payload or {}).get("text", "")
            self.post_status(operation.user_id, status_id, text)
        elif kind is OperationKind.ADD_FRIEND:
            target = operation.target_id
            if target is not None and target != operation.user_id:
                self.add_friendship(operation.user_id, target)
        elif kind is OperationKind.UPDATE_PROFILE:
            self.update_profile(operation.user_id, **(operation.payload or {}))
        else:  # pragma: no cover - exhaustive over OperationKind
            raise ValueError(f"unknown operation kind: {kind}")

    # ------------------------------------------------------------------ internals

    def _count(self, outcome: OperationOutcome) -> None:
        if not outcome.success:
            self.stats.failed_operations += 1
