"""Declarative scenario and sweep specifications.

A :class:`ScenarioSpec` names one closed-loop harness scenario *as data*:
the app population, operation mix, load trace, engine knobs, duration, and
seed policy are all plain picklable fields, so a scenario can be shipped to a
worker process, stored in a registry, or expanded over a parameter grid
without capturing any live object (engine, simulator, RNG).

A :class:`SweepGrid` is the FleetOpt-style sweep layer on top: a base
scenario, named parameter axes (cartesian product), and a replicate count.
:meth:`SweepGrid.expand` flattens the grid into an ordered list of
:class:`RunSpec` and assigns every run its seed from
``numpy.random.SeedSequence(base_seed).spawn(n)`` **at expansion time** —
run *i* gets child seed *i* regardless of how many workers later execute the
list or in what order they finish, which is what makes a parallel sweep
bitwise-reproducible against a serial one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.traces import (
    AnimotoViralTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    HalloweenSpikeTrace,
    LoadTrace,
    StepTrace,
)

# Trace construction is deferred to the worker (LoadTrace subclasses are
# dataclasses and would pickle fine, but keeping the spec purely nominal
# means a registry dump is human-readable JSON-shaped data).
TRACE_KINDS = {
    "constant": ConstantTrace,
    "step": StepTrace,
    "diurnal": DiurnalTrace,
    "viral": AnimotoViralTrace,
    "spike": HalloweenSpikeTrace,
    "flash_crowd": FlashCrowdTrace,
}

MIX_KINDS = ("cloudstone", "write_heavy", "uniform_read")

# Fault kinds the harness's fault-plan installer understands (see
# :func:`repro.experiments.harness.install_fault_plan`).
FAULT_KINDS = ("zone_outage", "crash_random", "interruption_storm",
               "host_degradation")


@dataclass(slots=True)
class TraceSpec:
    """A load trace named as data: a registered kind plus its parameters."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> LoadTrace:
        """Instantiate the trace; raises ValueError for an unknown kind.

        Validation happens here — in the worker — rather than at spec
        construction, so a malformed spec in a sweep surfaces as that one
        run's structured error record, not a parent-process crash.
        """
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; registered: {sorted(TRACE_KINDS)}"
            )
        return TRACE_KINDS[self.kind](**self.params)

    def with_params(self, **overrides: Any) -> "TraceSpec":
        return TraceSpec(kind=self.kind, params={**self.params, **overrides})


@dataclass(slots=True)
class FaultSpec:
    """One scheduled fault, as pure data.

    ``at`` is relative to the moment the closed-loop load starts (graph bulk
    load shifts absolute simulated time, so absolute fault times would land
    somewhere different in every scenario).  ``kind`` must be registered in
    ``FAULT_KINDS``; ``params`` feeds the corresponding
    :class:`~repro.storage.failure.FailureInjector` entry point (e.g.
    ``{"zone_index": 1}`` for a zone outage, ``{"count": 2}`` for random
    crashes).  Like trace specs, validation happens where the fault is
    installed — in the worker — so a malformed fault surfaces as that run's
    structured error record.
    """

    kind: str
    at: float
    duration: float
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")


@dataclass(slots=True)
class ScenarioSpec:
    """One closed-loop harness scenario, named entirely as data.

    The fields mirror :func:`repro.experiments.harness.run_closed_loop`'s
    arguments; ``engine_knobs`` reaches any :class:`~repro.core.engine.Scads`
    keyword the harness does not name explicitly (``cache=True``,
    ``repartition=True``, ``partitioner_kind="range"``, ...).  The spec
    deliberately has **no seed field**: seeds are assigned per run by
    :meth:`SweepGrid.expand`, never baked into the scenario, so replicates of
    the same cell differ only in their derived seed.
    """

    name: str
    trace: TraceSpec
    duration: float
    n_users: int = 200
    friend_cap: int = 20
    mix: str = "cloudstone"
    sla_latency: float = 0.150
    sla_percentile: float = 99.0
    # The windowed SLA *policy* this scenario declares (paper: SLAs are
    # declarative — "P% of requests of type T within L seconds" — and the
    # monitor's compliance measure is per-window).  A run complies when at
    # most ``sla_violation_budget`` of its traffic windows (fixed 60 s clock
    # windows, see metrics.sla) miss the declared bound, AND the run does
    # not end in ``sla_reattain_windows`` consecutive violated windows (a
    # terminal violation streak means the system never recovered) — bounded
    # transient violation during a declared disturbance (spike, zone outage,
    # write storm) is tolerated, but the system must re-attain the SLA.  ``sla_ops`` names the request types the policy *gates* (the
    # others are still measured and reported): a bulk-write mix declares its
    # SLA over interactive reads and lets the staleness bound judge the
    # async write pipeline, exactly the paper's Halloween-effect framing.
    # ``sla_write_violation_budget`` overrides the budget for writes (None =
    # same as reads): live migration dual-routes writes, so the shipped
    # default's write tail crosses the bound in more windows than reads.
    # Windows with fewer than ``sla_min_window_ops`` requests are skipped as
    # noise — at the 99th percentile a window needs >= 100 requests for a
    # single slow one not to decide the verdict, and the floor also drops
    # the near-empty drain-tail window at the end of a run.
    sla_violation_budget: float = 0.10
    sla_write_violation_budget: Optional[float] = None
    sla_ops: Tuple[str, ...] = ("read", "write")
    sla_reattain_windows: int = 3
    sla_min_window_ops: int = 100
    staleness_bound: float = 120.0
    read_your_writes: bool = False
    autoscale: bool = True
    predictive_scaling: bool = True
    initial_groups: int = 1
    control_interval: float = 30.0
    sampling_fraction: float = 1.0
    fifo_updates: bool = False
    engine_knobs: Dict[str, Any] = field(default_factory=dict)
    faults: Tuple[FaultSpec, ...] = ()

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced.

        Grid axes address spec fields by name; ``"trace.<param>"`` dotted
        names address the trace's parameters (e.g. ``"trace.rate"``), and
        ``"engine_knobs.<name>"`` the engine knob dict, so one flat axis
        mapping can sweep every layer.
        """
        trace_params: Dict[str, Any] = {}
        knob_params: Dict[str, Any] = {}
        flat: Dict[str, Any] = {}
        valid = {f.name for f in fields(self)}
        for key, value in overrides.items():
            if key.startswith("trace."):
                trace_params[key[len("trace."):]] = value
            elif key.startswith("engine_knobs."):
                knob_params[key[len("engine_knobs."):]] = value
            elif key in valid:
                flat[key] = value
            else:
                raise ValueError(
                    f"unknown scenario parameter {key!r} "
                    f"(fields: {sorted(valid)}; prefix trace./engine_knobs. "
                    "for nested parameters)"
                )
        spec = replace(self, **flat) if flat else replace(self)
        if trace_params:
            spec.trace = spec.trace.with_params(**trace_params)
        if knob_params:
            spec.engine_knobs = {**spec.engine_knobs, **knob_params}
        return spec


@dataclass(slots=True)
class RunSpec:
    """One fully-resolved run of a sweep: a scenario, its cell, and its seed."""

    index: int
    run_id: str
    cell: str
    params: Dict[str, Any]
    replicate: int
    seed: int
    scenario: ScenarioSpec


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` independent child seeds from one base seed.

    ``SeedSequence.spawn`` guarantees the children are statistically
    independent streams, and the derivation depends only on ``(base_seed,
    index)`` — the same run always gets the same seed no matter how many
    workers execute the sweep or how the pool schedules it.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


@dataclass(slots=True)
class SweepGrid:
    """A declarative sweep: base scenario x parameter grid x replicates.

    Args:
        scenario: the base :class:`ScenarioSpec` every cell starts from.
        axes: ordered mapping of parameter name -> values; cells are the
            cartesian product in the mapping's iteration order (last axis
            varies fastest).  Names follow :meth:`ScenarioSpec.with_overrides`
            (``"trace.rate"`` and ``"engine_knobs.cache"`` address nested
            parameters).
        replicates: seeded repetitions of every cell.
        base_seed: root of the :class:`numpy.random.SeedSequence` tree the
            per-run seeds are spawned from.
    """

    scenario: ScenarioSpec
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)
    replicates: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        # Materialise axis values: a single-pass iterable (generator) would
        # survive validation here and then silently expand to zero runs.
        self.axes = {name: list(values) for name, values in self.axes.items()}
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(list(values))
        return count

    def run_count(self) -> int:
        return self.cell_count() * self.replicates

    def expand(self) -> List[RunSpec]:
        """Flatten the grid into ordered, fully-seeded run specifications."""
        names = list(self.axes.keys())
        value_lists = [list(self.axes[name]) for name in names]
        runs: List[RunSpec] = []
        seeds = derive_seeds(self.base_seed, self.run_count())
        index = 0
        for combo in itertools.product(*value_lists) if names else [()]:
            params = dict(zip(names, combo))
            cell = (",".join(f"{name}={value}" for name, value in params.items())
                    or self.scenario.name)
            spec = self.scenario.with_overrides(**params) if params else self.scenario
            for replicate in range(self.replicates):
                runs.append(RunSpec(
                    index=index,
                    run_id=f"{cell}#r{replicate}",
                    cell=cell,
                    params=params,
                    replicate=replicate,
                    seed=seeds[index],
                    scenario=spec,
                ))
                index += 1
        return runs
