"""Parallel experiment fabric: deterministic multi-process scenario sweeps.

Independent simulated runs are embarrassingly parallel; this package turns N
cores into ~N× more scenarios per hour without giving up reproducibility:

* :mod:`repro.parallel.spec` — scenarios and sweeps as declarative data
  (:class:`ScenarioSpec`, :class:`SweepGrid`), with per-run seeds derived
  from ``numpy.random.SeedSequence.spawn`` at expansion time;
* :mod:`repro.parallel.executor` — inline or process-pool execution with
  per-run failure isolation and progress streaming; per-run results are
  byte-identical whatever the worker count;
* :mod:`repro.parallel.results` — picklable run records and mergeable
  per-cell aggregation built on ``PercentileEstimator.merge``;
* :mod:`repro.parallel.scenarios` — the standard closed-loop suite as specs
  (what ``make sweep`` runs).
"""

from repro.parallel.executor import execute_run, run_scenario, run_sweep
from repro.parallel.results import (
    MergedCellReport,
    RunFailure,
    RunSuccess,
    SweepResult,
    merge_estimators,
    merge_sla_reports,
)
from repro.parallel.spec import (
    RunSpec,
    ScenarioSpec,
    SweepGrid,
    TraceSpec,
    derive_seeds,
)

__all__ = [
    "MergedCellReport",
    "RunFailure",
    "RunSpec",
    "RunSuccess",
    "ScenarioSpec",
    "SweepGrid",
    "SweepResult",
    "TraceSpec",
    "derive_seeds",
    "execute_run",
    "merge_estimators",
    "merge_sla_reports",
    "run_scenario",
    "run_sweep",
]
