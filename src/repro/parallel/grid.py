"""The default-on validation grid: scenario corpus x configuration cells.

This is the layer that justifies shipping repartitioning and the
staleness-budget cache tier as defaults (see
:class:`~repro.core.engine.Scads`).  It expands every corpus scenario
(:data:`~repro.parallel.scenarios.STANDARD_SUITE`) against the four
configuration cells

    ``baseline``     — both features opted out
    ``repartition``  — hot-partition rebalancer only
    ``cache``        — staleness-budget cache tier only
    ``both``         — the shipped default

with **paired seeds**: replicate *r* of a scenario uses the same derived
seed in all four cells, so cross-cell comparisons (the dominance check
below) see the same workload realisation, not four different draws.  Runs
execute through the ordinary sweep executor, so the grid inherits its
guarantee that worker count cannot change any result — and the verdict,
being a pure function of the :class:`~repro.parallel.results.SweepResult`,
is byte-identical at ``workers=1`` and ``workers=N`` (tested).

The verdict gates on, per cell:

* every expected cell present, with zero failed runs;
* the consistency contract held: zero arbitration-stale reads and merged
  max replication lag within the scenario's staleness bound — except in
  crash/outage fault scenarios, where the outage window legitimately
  suspends the bound (the paper's consistency/availability tradeoff); there
  the grid reports staleness but gates only on the SLA re-attainment.
  Spot *interruption storms* keep the gate: revocation comes with notice,
  so a graceful drain that leaks a stale read is a bug, and cells whose
  runs audited acknowledged writes additionally gate on **zero lost
  acknowledged writes**;
* the scenario's **declared SLA policy** (see
  :class:`~repro.parallel.spec.ScenarioSpec`): at most
  ``sla_violation_budget`` of the run's fixed 60 s compliance windows may
  miss "P% of requests within L seconds", and the run must not end in a
  terminal streak of ``sla_reattain_windows`` consecutive violated windows
  — the paper's windowed SLA semantics, which tolerate a bounded transient
  while a declared disturbance outruns boot delay but demand the system
  come back afterwards rather than degrade into the end of the run.  The policy gates the op types the scenario names
  in ``sla_ops`` (writes may carry their own
  ``sla_write_violation_budget``); bulk-write mixes gate reads plus the
  staleness bound and leave per-write latency report-only, the paper's
  Halloween-effect framing.  In **full** mode this policy is *enforced only on
  the shipped-default cell* (``both``): the comparison arms exist to
  measure, and ``baseline`` structurally cannot meet a hot-key workload's
  SLA at any fleet size (renting never splits a hot partition — the very
  receipt that justifies the flip); their compliance is reported in the
  table, not gated.  In **smoke** mode the calibrated-gentle corpus is
  expected to comply in every cell, so the gate applies to all four — the
  cheap cross-cell regression net CI runs on every push.  Runs too short
  to yield two traffic windows (the smoke tier's seconds-long runs) fall
  back to the whole-run SLA report.

and per scenario, in full (non-smoke) mode:

* **dominance** — for workloads the shipped default should win
  (:data:`DOMINANCE_SCENARIOS`), the ``both`` cell must beat ``baseline``
  on read p99 *and* dollars;
* **no-harm** — on *every* scenario (including the cache-hostile and
  fault-injection ones), the shipped default's whole-run read and write
  p99 must stay within :data:`NO_HARM_MARGIN` of baseline's: flipping the
  defaults must never buy one workload's win with another's regression.

Smoke runs skip both cross-checks, mirroring the ``BENCH_SMOKE``
convention of not asserting economics on seconds-long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.parallel.results import MergedCellReport, RunSuccess, SweepResult
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant
from repro.parallel.spec import RunSpec, ScenarioSpec, derive_seeds

# The four configuration cells, as engine-knob overrides.  Explicit on both
# axes: the engine now defaults both features ON, so ``baseline`` must name
# the opt-outs rather than rely on omission.
CONFIG_CELLS: Dict[str, Dict[str, object]] = {
    "baseline": {"engine_knobs.repartition": False, "engine_knobs.cache": False},
    "repartition": {"engine_knobs.repartition": True, "engine_knobs.cache": False},
    "cache": {"engine_knobs.repartition": False, "engine_knobs.cache": True},
    "both": {"engine_knobs.repartition": True, "engine_knobs.cache": True},
}

# Workloads the shipped default is *supposed* to win outright: skewed,
# read-dominated, steady enough that the cache's absorbed load translates
# into both latency and rented-machine savings.  Bursty and fault scenarios
# are deliberately absent — there the grid asserts "no harm", not victory.
DOMINANCE_SCENARIOS = ("standard-closed-loop", "cache-tier")

# The no-harm cross-check's tolerance: the shipped default's whole-run read
# and write p99 may not exceed baseline's by more than this factor on any
# scenario.  Generous enough for paired-seed noise, tight enough that a
# real regression (a workload the cache or rebalancer actively hurts)
# cannot hide inside it.
NO_HARM_MARGIN = 1.25


@dataclass(slots=True)
class CheckResult:
    """One named gate: what was checked, whether it held, and the numbers."""

    name: str
    passed: bool
    detail: str


@dataclass(slots=True)
class CellVerdict:
    """Every gate applied to one (scenario, config) cell."""

    scenario: str
    config: str
    cell: str
    report: Optional[MergedCellReport]
    stale_reads: int
    max_replication_lag: float
    checks: List[CheckResult] = field(default_factory=list)
    # Windowed-policy compliance, one short string per op type (e.g.
    # "2/18w" = 2 of 18 traffic windows violated).  Always populated for
    # the table; it only becomes a gate (a CheckResult) where the policy is
    # enforced — see evaluate_grid.
    read_compliance: str = "-"
    write_compliance: str = "-"

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)


@dataclass(slots=True)
class GridVerdict:
    """The whole grid's verdict: per-cell gates plus cross-cell checks."""

    cells: List[CellVerdict]
    cross_checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (all(cell.passed for cell in self.cells)
                and all(check.passed for check in self.cross_checks))

    def failures(self) -> List[str]:
        """Human-readable description of every failed gate."""
        lines: List[str] = []
        for cell in self.cells:
            for check in cell.checks:
                if not check.passed:
                    lines.append(f"{cell.cell}: {check.name} — {check.detail}")
        for check in self.cross_checks:
            if not check.passed:
                lines.append(f"{check.name} — {check.detail}")
        return lines


def grid_scenarios(smoke: bool = False,
                   names: Optional[Sequence[str]] = None) -> List[ScenarioSpec]:
    """The corpus the grid runs: full specs or their smoke variants.

    ``names`` filters the corpus *after* the full list is materialised, so a
    filtered grid's per-scenario seeds match the unfiltered grid's (the same
    property ``scripts/run_sweep.py`` maintains).
    """
    corpus = [smoke_variant(spec) if smoke else spec for spec in STANDARD_SUITE]
    if names is not None:
        wanted = set(names)
        known = {spec.name for spec in corpus}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown scenarios {sorted(unknown)}; "
                             f"corpus: {sorted(known)}")
        corpus = [spec for spec in corpus if spec.name in wanted]
    return corpus


def build_grid_runs(scenarios: Optional[Sequence[ScenarioSpec]] = None,
                    replicates: int = 1, base_seed: int = 0,
                    configs: Optional[Dict[str, Dict[str, object]]] = None,
                    ) -> List[RunSpec]:
    """Expand (scenario x config x replicate) into seeded run specs.

    Seeding is **paired and prefix-stable**: scenario *i* of the full corpus
    derives its own child seed from ``base_seed`` (so appending scenarios
    never reshuffles existing ones), replicate *r* derives its seed from the
    scenario's child — and that replicate seed is shared by all four config
    cells, which is what makes the dominance comparison a paired experiment
    rather than a comparison of independent draws.
    """
    if scenarios is None:
        scenarios = grid_scenarios()
    configs = CONFIG_CELLS if configs is None else configs
    # Seeds are positional against the *full* corpus so a filtered grid
    # reproduces the unfiltered grid's per-scenario streams.
    corpus_index = {spec.name: i for i, spec in enumerate(STANDARD_SUITE)}
    scenario_seeds = derive_seeds(base_seed, len(STANDARD_SUITE))
    runs: List[RunSpec] = []
    index = 0
    for spec in scenarios:
        position = corpus_index.get(spec.name)
        scenario_seed = (scenario_seeds[position] if position is not None
                         else derive_seeds(base_seed + hash(spec.name) % (2**31), 1)[0])
        replicate_seeds = derive_seeds(scenario_seed, replicates)
        for config, overrides in configs.items():
            cell = f"{spec.name}/{config}"
            configured = spec.with_overrides(**overrides)
            for replicate in range(replicates):
                runs.append(RunSpec(
                    index=index,
                    run_id=f"{cell}#r{replicate}",
                    cell=cell,
                    params={"scenario": spec.name, "config": config},
                    replicate=replicate,
                    seed=replicate_seeds[replicate],
                    scenario=configured,
                ))
                index += 1
    return runs


def _cell_staleness(successes: List[RunSuccess]) -> tuple:
    stale = sum(record.summary.stale_reads for record in successes)
    lag = max((record.summary.max_replication_lag for record in successes),
              default=0.0)
    return stale, lag


def _cell_lost_writes(successes: List[RunSuccess]) -> Optional[int]:
    """Summed acknowledged-write losses, or None when no run audited them."""
    audited = [record.summary.lost_acked_writes for record in successes
               if getattr(record.summary, "lost_acked_writes", None) is not None]
    if not audited:
        return None
    return sum(audited)


def _policy_sla_check(spec: ScenarioSpec, successes: List[RunSuccess],
                      report: MergedCellReport, op: str) -> tuple:
    """Evaluate one op type's declared windowed SLA policy over a cell.

    Every replicate must comply individually (merging windows across runs
    would let one replicate's slack hide another's sustained violation).
    Returns ``(passed, detail, compliance)`` where ``compliance`` is the
    short per-cell summary the table prints.  A run without at least two
    traffic windows (seconds-long smoke runs) falls back to the whole-run
    SLA report.
    """
    sla = report.read_report if op == "read" else report.write_report
    percentile = sla.target_percentile
    budget = spec.sla_violation_budget
    if op == "write" and spec.sla_write_violation_budget is not None:
        budget = spec.sla_write_violation_budget
    worst_frac = 0.0
    violated_total = 0
    traffic_total = 0
    reattained = True
    windowed_runs = 0
    for record in successes:
        windows = (record.summary.read_windows if op == "read"
                   else record.summary.write_windows)
        traffic = [w for w in windows if w.total >= spec.sla_min_window_ops]
        if len(traffic) < 2:
            continue
        windowed_runs += 1
        violated = sum(1 for w in traffic if not w.compliant(percentile))
        frac = violated / len(traffic)
        worst_frac = max(worst_frac, frac)
        violated_total += violated
        traffic_total += len(traffic)
        # Re-attainment failure = a terminal violation streak: the run ends
        # with >= sla_reattain_windows consecutive violated windows, i.e.
        # the system never came back after its last disturbance.  A single
        # violated window at the end (a run cut off mid-dawn-ramp, a
        # stationary-tail blip) is bounded by the violation budget instead.
        terminal_streak = 0
        for window in reversed(traffic):
            if window.compliant(percentile):
                break
            terminal_streak += 1
        if terminal_streak >= spec.sla_reattain_windows:
            reattained = False
    if windowed_runs == 0:
        # Too short for windowed policy: gate on the whole-run report.
        return (sla.satisfied,
                f"whole-run p{percentile:g} = "
                f"{sla.observed_percentile_latency * 1000:.1f}ms vs "
                f"{sla.target_latency * 1000:.0f}ms target "
                "(run too short for windowed policy)",
                "yes" if sla.satisfied else "NO")
    passed = worst_frac <= budget and reattained
    detail = (f"{violated_total}/{traffic_total} windows violated "
              f"(worst run {worst_frac:.0%} vs {budget:.0%} budget), "
              + ("re-attained" if reattained else "NOT re-attained"))
    compliance = f"{violated_total}/{traffic_total}w" + ("" if reattained else "!")
    return passed, detail, compliance


def evaluate_grid(result: SweepResult,
                  scenarios: Sequence[ScenarioSpec],
                  smoke: bool = False) -> GridVerdict:
    """Score a completed grid sweep against the validation gates.

    ``smoke=True`` enforces the SLA policy on every cell (the calibrated
    smoke corpus is expected to comply everywhere) but skips the dominance
    and no-harm cross-checks, the same way ``BENCH_SMOKE`` skips cost
    assertions: seconds-long runs prove the machinery and the gates, not
    the dollars.  Full mode enforces the policy on the shipped-default
    (``both``) cell, reports it for the comparison arms, and runs both
    cross-checks.
    """
    by_name = {spec.name: spec for spec in scenarios}
    successes_by_cell: Dict[str, List[RunSuccess]] = {}
    failures_by_cell: Dict[str, int] = {}
    for record in result.records:
        if record.ok:
            successes_by_cell.setdefault(record.cell, []).append(record)
        else:
            failures_by_cell[record.cell] = failures_by_cell.get(record.cell, 0) + 1
    reports = {report.cell: report for report in result.cell_reports()}

    cells: List[CellVerdict] = []
    for spec in scenarios:
        # Crash/outage faults legitimately suspend the staleness bound (the
        # paper's consistency/availability tradeoff).  Interruption storms
        # and host degradation do NOT: revocation comes with notice, and a
        # noisy neighbor only slows nodes down without killing them — a
        # graceful drain or an evacuation that leaks a stale read or loses
        # an acknowledged write is a bug — so those scenarios keep the
        # consistency gate.
        consistency_gated = all(
            f.kind in ("interruption_storm", "host_degradation")
            for f in spec.faults)
        for config in CONFIG_CELLS:
            cell = f"{spec.name}/{config}"
            report = reports.get(cell)
            successes = successes_by_cell.get(cell, [])
            stale, lag = _cell_staleness(successes)
            verdict = CellVerdict(scenario=spec.name, config=config, cell=cell,
                                  report=report, stale_reads=stale,
                                  max_replication_lag=lag)
            failed = failures_by_cell.get(cell, 0)
            verdict.checks.append(CheckResult(
                "cell-complete", report is not None and failed == 0,
                f"{len(successes)} ok, {failed} failed"))
            if report is None:
                cells.append(verdict)
                continue
            enforce_sla = smoke or config == "both"
            for op in ("read", "write"):
                passed, detail, compliance = _policy_sla_check(
                    spec, successes, report, op)
                if op == "read":
                    verdict.read_compliance = compliance
                else:
                    verdict.write_compliance = compliance
                if enforce_sla and op in spec.sla_ops:
                    verdict.checks.append(CheckResult(f"{op}-sla", passed, detail))
            if consistency_gated:
                verdict.checks.append(CheckResult(
                    "staleness", stale == 0 and lag <= spec.staleness_bound,
                    f"{stale} stale reads, max lag {lag:.1f}s "
                    f"vs {spec.staleness_bound:.0f}s bound"))
            lost = _cell_lost_writes(successes)
            if lost is not None:
                # Zero data loss through drains, hibernations, and forced
                # revocations: every acknowledged write must still be held
                # by an alive owner at run end (engine write audit).
                verdict.checks.append(CheckResult(
                    "lost-writes", lost == 0,
                    f"{lost} acknowledged writes lost"))
            cells.append(verdict)

    cross: List[CheckResult] = []
    if not smoke:
        for name in DOMINANCE_SCENARIOS:
            if name not in by_name:
                continue
            both = reports.get(f"{name}/both")
            baseline = reports.get(f"{name}/baseline")
            if both is None or baseline is None:
                cross.append(CheckResult(
                    f"dominance:{name}", False, "missing both/baseline cell"))
                continue
            p99_both = both.read_report.observed_percentile_latency
            p99_base = baseline.read_report.observed_percentile_latency
            dominates = (p99_both <= p99_base
                         and both.cost.dollars <= baseline.cost.dollars)
            cross.append(CheckResult(
                f"dominance:{name}", dominates,
                f"both p99 {p99_both * 1000:.1f}ms / ${both.cost.dollars:.2f} "
                f"vs baseline {p99_base * 1000:.1f}ms / "
                f"${baseline.cost.dollars:.2f}"))
        for spec in scenarios:
            both = reports.get(f"{spec.name}/both")
            baseline = reports.get(f"{spec.name}/baseline")
            if both is None or baseline is None:
                continue  # cell-complete already failed the missing cell
            harmless = True
            parts = []
            for op in ("read", "write"):
                p_both = (both.read_report if op == "read"
                          else both.write_report).observed_percentile_latency
                p_base = (baseline.read_report if op == "read"
                          else baseline.write_report).observed_percentile_latency
                if p_both > p_base * NO_HARM_MARGIN:
                    harmless = False
                parts.append(f"{op} {p_both * 1000:.1f}ms vs "
                             f"{p_base * 1000:.1f}ms")
            cross.append(CheckResult(
                f"noharm:{spec.name}", harmless,
                f"both vs baseline p99 within {NO_HARM_MARGIN:g}x: "
                + ", ".join(parts)))
    return GridVerdict(cells=cells, cross_checks=cross)


def render_verdict_table(verdict: GridVerdict) -> str:
    """The grid's printed pass/fail table, one row per cell.

    The ``r-win``/``w-win`` columns show windowed compliance (violated /
    traffic windows; a trailing ``!`` marks failed re-attainment) for every
    cell; whether that compliance is *gated* depends on the cell — see
    :func:`evaluate_grid`.
    """
    headers = ["cell", "runs", "p99 ms", "r-win", "w-win", "stale", "lag s",
               "dollars", "verdict"]
    rows: List[List[str]] = []
    for cell in verdict.cells:
        report = cell.report
        rows.append([
            cell.cell,
            str(report.runs) if report else "0",
            f"{report.read_report.observed_percentile_latency * 1000:.1f}"
            if report else "-",
            cell.read_compliance,
            cell.write_compliance,
            str(cell.stale_reads),
            f"{cell.max_replication_lag:.1f}",
            f"{report.cost.dollars:.2f}" if report else "-",
            "pass" if cell.passed else "FAIL",
        ])
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * widths[i] for i in range(len(headers)))]
    lines.extend("  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
                 for row in rows)
    for check in verdict.cross_checks:
        status = "pass" if check.passed else "FAIL"
        lines.append(f"{check.name}: {status} ({check.detail})")
    lines.append(f"grid verdict: {'PASS' if verdict.passed else 'FAIL'}")
    return "\n".join(lines)
