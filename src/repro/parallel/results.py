"""Mergeable sweep results.

Workers ship back one :class:`RunSuccess` (a picklable
:class:`~repro.experiments.harness.ClosedLoopSummary` plus sweep bookkeeping)
or one :class:`RunFailure` (a structured error record — the run's exception
never takes down its siblings).  :class:`SweepResult` holds them in run-index
order, so the collection is identical no matter how pool scheduling
interleaved the executions, and aggregates replicates into per-cell
:class:`MergedCellReport` summaries via the mergeable metrics layer:
:meth:`~repro.metrics.percentiles.PercentileEstimator.merge` combines the
runs' latency distributions without re-sorting raw samples, which makes the
merged SLA percentile *exact* (equal to a single estimator fed every run's
samples), and :meth:`~repro.metrics.cost.CostReport.merge` /
:meth:`~repro.metrics.sla.SLAReport.merge` combine the economics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Union

from repro.experiments.harness import ClosedLoopSummary
from repro.metrics.cost import CostReport
from repro.metrics.percentiles import PercentileEstimator
from repro.metrics.sla import SLAReport
from repro.obs.telemetry import Telemetry
from repro.obs.timeline import DecisionTimeline


@dataclass(slots=True)
class RunSuccess:
    """One completed run: sweep bookkeeping plus the portable summary."""

    index: int
    run_id: str
    cell: str
    params: Dict[str, Any]
    seed: int
    summary: ClosedLoopSummary
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return True


@dataclass(slots=True)
class RunFailure:
    """One failed run, isolated into a structured error record."""

    index: int
    run_id: str
    cell: str
    params: Dict[str, Any]
    seed: int
    error_type: str
    message: str
    traceback: str
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return False


RunRecord = Union[RunSuccess, RunFailure]


def merge_sla_reports(reports: List[SLAReport],
                      estimator: Optional[PercentileEstimator]) -> SLAReport:
    """Combine per-run SLA reports into one exact multi-run report.

    Fractions-within combine exactly by request-count weighting; the
    percentile latency is recomputed from the merged estimator (the union of
    every run's successful-request latencies) when one is available, because
    a percentile of a union is not derivable from per-run percentiles.
    """
    if not reports:
        raise ValueError("no reports to merge")
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merge(report)
    if estimator is not None and len(estimator) > 0:
        merged = replace(
            merged,
            observed_percentile_latency=estimator.percentile(merged.target_percentile),
        )
    return merged


def merge_estimators(
    estimators: List[Optional[PercentileEstimator]],
) -> Optional[PercentileEstimator]:
    """Union of the given estimators' samples (None when none carry samples)."""
    present = [e for e in estimators if e is not None and len(e) > 0]
    if not present:
        return None
    return PercentileEstimator.merged(present)


def merge_telemetry(registries: List[Optional[Telemetry]]) -> Optional[Telemetry]:
    """Fold per-run telemetry registries into one (None when none present).

    Counters sum, gauges take the max, histograms merge exactly — and the
    fold runs in run-index order, so the result is identical at any worker
    count (asserted by the trace-sweep determinism tests).
    """
    present = [t for t in registries if t is not None]
    if not present:
        return None
    merged = Telemetry()
    for registry in present:
        merged.merge(registry)
    return merged


def merge_traces(trace_lists: List[Optional[list]]) -> Optional[list]:
    """Concatenate per-run trace lists in run-index order (None when absent)."""
    present = [traces for traces in trace_lists if traces is not None]
    if not present:
        return None
    merged: list = []
    for traces in present:
        merged.extend(traces)
    return merged


def merge_timelines(
    timelines: List[Optional[DecisionTimeline]],
) -> Optional[DecisionTimeline]:
    """Concatenate per-run decision timelines in run-index order."""
    present = [t for t in timelines if t is not None]
    if not present:
        return None
    merged = DecisionTimeline()
    for timeline in present:
        merged.merge(timeline)
    return merged


@dataclass(slots=True)
class MergedCellReport:
    """One grid cell's replicates, aggregated."""

    cell: str
    params: Dict[str, Any]
    runs: int
    failures: int
    operations: int
    duration: float
    read_report: SLAReport
    write_report: SLAReport
    cost: CostReport
    read_latency: Optional[PercentileEstimator]
    write_latency: Optional[PercentileEstimator]
    # Observability aggregates (None unless the cell's runs carried them).
    telemetry: Optional[Telemetry] = None
    traces: Optional[list] = None
    decision_timeline: Optional[DecisionTimeline] = None

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for the sweep runner's printed table."""
        return {
            "cell": self.cell,
            "runs": self.runs,
            "failures": self.failures,
            "operations": self.operations,
            "read_p_latency_ms": round(
                self.read_report.observed_percentile_latency * 1000, 2),
            "read_sla_met": self.read_report.satisfied,
            "dollars": round(self.cost.dollars, 3),
            "machine_hours": round(self.cost.machine_hours, 2),
            "cost_per_million": round(self.cost.cost_per_million_requests(), 3),
        }

    def read_attainment_at(self, target_latency: float) -> float:
        """What read-SLA attainment a *different* latency target would have
        had over this cell's merged samples.

        This is the point of carrying merged estimators: a sweep over e.g.
        provisioning knobs can be re-scored against candidate SLA targets
        after the fact, without re-running anything.  Uses the inclusive
        ``latency <= target`` comparison the live tracker uses; successful
        reads only (failures are an availability question, not a latency
        one).
        """
        if self.read_latency is None or len(self.read_latency) == 0:
            raise ValueError(f"cell {self.cell!r} recorded no read latencies")
        return self.read_latency.fraction_at_or_below(target_latency)


def merge_cell(cell: str, params: Dict[str, Any],
               successes: List[RunSuccess], failures: int) -> MergedCellReport:
    """Aggregate one cell's successful replicates into a merged report."""
    if not successes:
        raise ValueError(f"cell {cell!r} has no successful runs to merge")
    summaries = [record.summary for record in successes]
    read_latency = merge_estimators([s.read_latency for s in summaries])
    write_latency = merge_estimators([s.write_latency for s in summaries])
    cost = summaries[0].cost
    for summary in summaries[1:]:
        cost = cost.merge(summary.cost)
    return MergedCellReport(
        cell=cell,
        params=dict(params),
        runs=len(successes),
        failures=failures,
        operations=sum(s.operations for s in summaries),
        duration=sum(s.duration for s in summaries),
        read_report=merge_sla_reports([s.read_report for s in summaries],
                                      read_latency),
        write_report=merge_sla_reports([s.write_report for s in summaries],
                                       write_latency),
        cost=cost,
        read_latency=read_latency,
        write_latency=write_latency,
        telemetry=merge_telemetry([s.telemetry for s in summaries]),
        traces=merge_traces([s.traces for s in summaries]),
        decision_timeline=merge_timelines(
            [s.decision_timeline for s in summaries]),
    )


@dataclass(slots=True)
class SweepResult:
    """Every run record of one sweep, in run-index order."""

    records: List[RunRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def successes(self) -> List[RunSuccess]:
        return [r for r in self.records if r.ok]

    @property
    def failures(self) -> List[RunFailure]:
        return [r for r in self.records if not r.ok]

    def cells(self) -> List[str]:
        """Cell labels in first-appearance (grid) order."""
        seen: List[str] = []
        for record in self.records:
            if record.cell not in seen:
                seen.append(record.cell)
        return seen

    def cell_reports(self) -> List[MergedCellReport]:
        """Per-cell merged reports (cells whose every run failed are skipped)."""
        reports: List[MergedCellReport] = []
        for cell in self.cells():
            members = [r for r in self.records if r.cell == cell]
            successes = [r for r in members if r.ok]
            if not successes:
                continue
            reports.append(merge_cell(cell, members[0].params, successes,
                                      failures=len(members) - len(successes)))
        return reports
