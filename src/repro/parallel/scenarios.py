"""The scenario corpus, as declarative specs.

These mirror the closed-loop workloads the paper benchmarks drive through
:func:`repro.experiments.harness.run_closed_loop` — the flat CloudStone
closed loop the perf harness freezes, the write-heavy mix, the scale-down
diurnal cycle, the Halloween spike, the Animoto viral ramp, and the
cache-tier variant — plus the validation-grid corpus: a diurnal cycle with
a flash crowd erupting on top, a regional failover driven by the failure
injector, a write storm whose index-maintenance backlog must drain
("compaction"), and a cache-hostile uniform-read scan.  ``make sweep`` runs
the whole family across cores from one registry, and ``make grid`` expands
it against the {baseline, repartition, cache, both} configuration axes (see
:mod:`repro.parallel.grid`).  Durations are compressed the same way the
benchmarks compress them: every claim is about *relative* behaviour, so the
suite keeps the phenomena (ramps outpacing boot delays, troughs deep enough
to scale down into) at wall-clock costs a laptop can afford.

``smoke_suite`` is the tiny-grid variant ``make sweep-smoke`` and the
bench-smoke sweep harness use: seconds of simulated time per run, enough to
prove the fan-out machinery end to end without measuring anything.
``smoke_variant`` shrinks any corpus scenario the same way for the grid's
smoke tier (``make grid-smoke``), keeping each family's *shape* — the spike
still spikes, the zone still fails — inside a seconds-long run.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.parallel.spec import FaultSpec, ScenarioSpec, SweepGrid, TraceSpec

# The perf harness's frozen standard scenario (see
# benchmarks/bench_perf_throughput.py) expressed as data.
STANDARD_CLOSED_LOOP = ScenarioSpec(
    name="standard-closed-loop",
    trace=TraceSpec("constant", {"rate": 300.0}),
    duration=1200.0,
    n_users=300,
    autoscale=True,
    predictive_scaling=False,
    # A production-sane fleet for the declared steady rate: a steady-load
    # scenario gates serving, not cold-boot from a starved fleet (the
    # perf harness pins its own pre-flip 4-group shape, see
    # benchmarks/bench_perf_throughput.py).
    initial_groups=10,
    control_interval=30.0,
    # Reads stay clean; the write tail crosses the bound in the windows
    # where the rebalancer's live migrations dual-route writes.
    sla_write_violation_budget=0.30,
)

STANDARD_SUITE: List[ScenarioSpec] = [
    STANDARD_CLOSED_LOOP,
    ScenarioSpec(
        name="write-heavy",
        trace=TraceSpec("constant", {"rate": 150.0}),
        duration=900.0,
        n_users=300,
        mix="write_heavy",
        predictive_scaling=False,
        # Writes amplify (replication fan-out + index maintenance), so the
        # planner converges slower than for reads; start provisioned for the
        # declared steady rate and budget the residual calibration ramp.
        initial_groups=8,
        # An upload-heavy application declares a looser interactive bound
        # (its reads contend with the write storm) and gates its SLA on
        # reads only: bulk writes are judged by the staleness bound — the
        # async index pipeline must keep up — not by per-write latency,
        # which hot-key replication fan-out makes structurally heavy-tailed
        # in every configuration (baseline included).
        sla_latency=0.750,
        sla_ops=("read",),
        sla_violation_budget=0.15,
    ),
    ScenarioSpec(
        name="diurnal-scale-down",
        trace=TraceSpec("diurnal", {"base_rate": 40.0, "peak_rate": 200.0,
                                    "period_hours": 1.0}),
        duration=5400.0,
        n_users=200,
        initial_groups=2,
        # Each dawn the ramp outpaces boot delay for a window or two.
        sla_violation_budget=0.20,
    ),
    ScenarioSpec(
        name="halloween-spike",
        trace=TraceSpec("spike", {"base_rate": 60.0, "spike_multiplier": 4.0,
                                  "spike_start": 600.0, "rise_duration": 120.0,
                                  "hold_duration": 900.0,
                                  "decay_duration": 600.0}),
        duration=3000.0,
        n_users=200,
        initial_groups=2,
        # An unforecast 4x surge violates while replacement capacity boots
        # (the paper's Halloween effect); the budget bounds that transient
        # and the re-attainment gate requires full recovery.
        sla_violation_budget=0.25,
        sla_write_violation_budget=0.30,
    ),
    ScenarioSpec(
        name="viral-ramp",
        trace=TraceSpec("viral", {"start_rate": 20.0, "peak_multiplier": 10.0,
                                  "ramp_start": 300.0,
                                  "ramp_duration": 2400.0}),
        duration=3600.0,
        n_users=200,
        initial_groups=2,
        sla_violation_budget=0.15,
        sla_write_violation_budget=0.25,
    ),
    ScenarioSpec(
        name="cache-tier",
        trace=TraceSpec("constant", {"rate": 300.0}),
        duration=1200.0,
        n_users=300,
        predictive_scaling=False,
        initial_groups=10,
        sla_write_violation_budget=0.30,
        # The cache tier is the shipped default now; the knob stays explicit
        # so this scenario keeps meaning "cache on" even if defaults move.
        engine_knobs={"cache": True},
    ),
    # ------------------------------------------------- validation-grid corpus
    ScenarioSpec(
        # Day/night cycle with a flash crowd erupting mid-cycle: the
        # controller must ride the trough down AND catch a minutes-scale
        # surge, with the crowd concentrating on the same hot graph the
        # cache/rebalancer exploit.
        name="diurnal-flash-crowd",
        trace=TraceSpec("flash_crowd", {"base_rate": 40.0, "peak_rate": 160.0,
                                        "period_hours": 1.0,
                                        "crowd_start": 1500.0,
                                        "crowd_multiplier": 4.0,
                                        "rise_duration": 120.0,
                                        "hold_duration": 600.0,
                                        "decay_duration": 600.0}),
        duration=3600.0,
        n_users=200,
        initial_groups=2,
        # Diurnal ramps plus a 4x flash crowd: two disturbance families'
        # worth of boot-lag windows share one budget.
        sla_violation_budget=0.30,
    ),
    ScenarioSpec(
        # Regional failover: one "availability zone" (the second member of
        # every replica group) crashes for five minutes mid-run.  Reads must
        # fail over to surviving replicas and the SLA must be re-attained;
        # recovered nodes reconcile on return.
        name="regional-failover",
        trace=TraceSpec("constant", {"rate": 120.0}),
        duration=1800.0,
        n_users=200,
        predictive_scaling=False,
        initial_groups=2,
        engine_knobs={"replication_factor": 3},
        faults=(FaultSpec(kind="zone_outage", at=600.0, duration=300.0,
                          params={"zone_index": 1}),),
        # Five minutes of a zone down out of thirty: degraded service during
        # the outage is the declared tradeoff; recovery is the gate.
        sla_violation_budget=0.30,
    ),
    ScenarioSpec(
        # Write storm: an upload-spike mix whose asynchronous index
        # maintenance backlog (the compaction analogue) must drain within
        # deadline while the storm is still being served.
        name="write-storm-compaction",
        trace=TraceSpec("spike", {"base_rate": 50.0, "spike_multiplier": 4.0,
                                  "spike_start": 300.0, "rise_duration": 60.0,
                                  "hold_duration": 300.0,
                                  "decay_duration": 300.0}),
        duration=1800.0,
        n_users=200,
        mix="write_heavy",
        initial_groups=3,
        # The storm itself runs hot until capacity lands and the index
        # backlog drains; the teeth are read re-attainment plus the
        # staleness bound on the drained backlog — mid-storm write latency
        # is the declared tradeoff, so the SLA gates reads only.
        sla_ops=("read",),
        sla_violation_budget=0.40,
    ),
    ScenarioSpec(
        # Spot-market robustness: a viral ramp forces the controller to buy
        # surge read replicas (spot-first), then a correlated revocation
        # storm lands mid-ramp — every spot instance gets its two-minute
        # notice at once and new spot launches are refused for seven
        # minutes, so surge capacity must drain gracefully (no stale reads,
        # no lost acknowledged writes) while replacements fall back to
        # on-demand.  When the storm passes, hibernated replicas resume via
        # reconcile instead of a cold re-copy.
        name="spot-interruption-storm",
        trace=TraceSpec("viral", {"start_rate": 20.0, "peak_multiplier": 10.0,
                                  "ramp_start": 300.0,
                                  "ramp_duration": 2400.0}),
        duration=3600.0,
        n_users=200,
        initial_groups=2,
        engine_knobs={"spot": True},
        faults=(FaultSpec(kind="interruption_storm", at=1500.0,
                          duration=420.0),),
        # The viral-ramp budget plus headroom for the revocation transient:
        # drains shed read capacity faster than on-demand fallback boots.
        sla_violation_budget=0.25,
        sla_write_violation_budget=0.30,
    ),
    ScenarioSpec(
        # Cache-hostile scan: read-only traffic with *uniform* user
        # popularity — no working set for the front tier to concentrate on.
        # The grid uses this to prove default-on caching degrades gracefully
        # (no SLA or staleness harm) when its premise (skew) is absent.
        name="cache-hostile-uniform",
        trace=TraceSpec("constant", {"rate": 200.0}),
        duration=1200.0,
        n_users=300,
        mix="uniform_read",
        predictive_scaling=False,
        initial_groups=4,
    ),
    ScenarioSpec(
        # Noisy-neighbor robustness: nodes share physical hosts (tenancy 4),
        # and mid-run a co-tenant degrades one host — every colocated node
        # serves 10x-slower *service* times for seven minutes while cluster
        # utilisation stays low.  Renting capacity cannot fix this (new
        # nodes neither speed up the sick host nor drain service-side
        # inflation); the monitor must diagnose contention-not-capacity
        # from per-host service residuals, and the controller must
        # live-migrate replicas off the noisy host (anti-affinity
        # preserved) instead of scaling up.  Degraded nodes never die, so
        # the staleness/lost-write gates stay enforced at full strength.
        name="noisy-neighbor-episode",
        trace=TraceSpec("constant", {"rate": 120.0}),
        duration=1800.0,
        n_users=200,
        predictive_scaling=False,
        initial_groups=3,
        # The write audit arms the lost-writes gate: a live migration off
        # the noisy host must never drop an acknowledged write.
        engine_knobs={"replication_factor": 3,
                      "contention": {"tenancy": 4},
                      "write_audit": True},
        faults=(FaultSpec(kind="host_degradation", at=600.0, duration=420.0,
                          params={"host_id": "host-0", "intensity": 10.0}),),
        # The episode violates until diagnosis fires and the evacuation's
        # re-copies settle; the budget bounds that transient and the
        # re-attainment gate requires the SLA back before run end.
        sla_violation_budget=0.25,
        sla_write_violation_budget=0.30,
    ),
]


# Per-scenario shrink recipes for the grid's smoke tier: keep each family's
# shape (the spike still spikes inside the window, the zone still fails and
# recovers) at seconds of simulated time.  Names follow
# :meth:`ScenarioSpec.with_overrides` ("trace.x" reaches trace params).
_SMOKE_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "standard-closed-loop": {"duration": 24.0, "trace.rate": 40.0},
    "write-heavy": {"duration": 24.0, "trace.rate": 10.0},
    "diurnal-scale-down": {"duration": 36.0,
                           "trace.base_rate": 10.0, "trace.peak_rate": 40.0,
                           "trace.period_hours": 0.01},
    "halloween-spike": {"duration": 30.0,
                        "trace.base_rate": 10.0, "trace.spike_multiplier": 2.5,
                        "trace.spike_start": 6.0,
                        "trace.rise_duration": 3.0, "trace.hold_duration": 9.0,
                        "trace.decay_duration": 6.0},
    "viral-ramp": {"duration": 30.0, "trace.start_rate": 10.0,
                   "trace.peak_multiplier": 4.0, "trace.ramp_start": 5.0,
                   "trace.ramp_duration": 20.0},
    "cache-tier": {"duration": 24.0, "trace.rate": 40.0},
    "diurnal-flash-crowd": {"duration": 36.0,
                            "trace.base_rate": 8.0, "trace.peak_rate": 20.0,
                            "trace.period_hours": 0.01,
                            "trace.crowd_start": 10.0,
                            "trace.crowd_multiplier": 2.0,
                            "trace.rise_duration": 3.0,
                            "trace.hold_duration": 9.0,
                            "trace.decay_duration": 6.0},
    "regional-failover": {"duration": 36.0, "trace.rate": 30.0,
                          "faults": (FaultSpec(kind="zone_outage", at=10.0,
                                               duration=10.0,
                                               params={"zone_index": 1}),)},
    "write-storm-compaction": {"duration": 30.0,
                               "trace.base_rate": 6.0,
                               "trace.spike_multiplier": 2.0,
                               "trace.spike_start": 6.0,
                               "trace.rise_duration": 3.0,
                               "trace.hold_duration": 9.0,
                               "trace.decay_duration": 6.0},
    # The ramp is steep enough that the first control step bids spot surge
    # capacity; the storm lands just after, so CI exercises notice delivery
    # (abort-while-booting) and the refused-launch on-demand fallback on
    # every push.  The notice deadline (120 s) outlives a seconds-long run,
    # so *completed* drain/hibernate/resume cycles need the full scenario.
    # The latency bound is smoke-only slack: forcing spot bids means the
    # ramp must outrun the fleet, and no rented capacity (60 s boot) can
    # land inside a 36 s run, so the interactive 150 ms p99 is unattainable
    # by construction here — the full-length scenario keeps the real bound;
    # the loose backstop still catches runaway queueing, and the staleness /
    # lost-write gates are enforced at full strength either way.
    "spot-interruption-storm": {"duration": 36.0, "trace.start_rate": 250.0,
                                "sla_latency": 2.5,
                                "trace.peak_multiplier": 5.0,
                                "trace.ramp_start": 2.0,
                                "trace.ramp_duration": 16.0,
                                # One starting group (vs the common smoke
                                # two), and a rate high enough that the
                                # planner's target outruns one group plus
                                # the per-group surge cap: the ramp must
                                # outgrow the fleet within the window or no
                                # surge is ever bid.
                                "initial_groups": 1,
                                # Lands just after the first control step's
                                # spot bids, so the notices hit live spot
                                # instances and later bids exercise the
                                # refused-launch on-demand fallback.
                                "faults": (FaultSpec(kind="interruption_storm",
                                                     at=22.0, duration=14.0),)},
    "cache-hostile-uniform": {"duration": 24.0, "trace.rate": 40.0},
    # The episode lands after the first control window and clears before the
    # run ends, so CI exercises injection, per-host residual tracking, and
    # the contention-vs-capacity classification on every push.  A completed
    # diagnose-evacuate-recover cycle needs violated windows plus EWMA
    # settling time, which a seconds-long run cannot hold — that is the full
    # scenario's job.  The gentle intensity keeps the inflated service tail
    # inside the interactive bound (smoke enforces the SLA on all four
    # config cells), and the staleness gate is enforced at full strength.
    "noisy-neighbor-episode": {"duration": 36.0, "trace.rate": 30.0,
                               "faults": (FaultSpec(kind="host_degradation",
                                                    at=8.0, duration=14.0,
                                                    params={"host_id": "host-0",
                                                            "intensity": 2.0}),)},
}


def smoke_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """The seconds-long version of one corpus scenario (``make grid-smoke``).

    Applies the scenario's shrink recipe plus the common smoke scale-down
    (small population, short control windows).  Raises ``KeyError`` for a
    scenario with no registered recipe — a new corpus entry must declare how
    it shrinks, or the smoke grid would silently run it at full length.
    """
    overrides = _SMOKE_OVERRIDES[spec.name]
    common = {"n_users": 40, "friend_cap": 10, "initial_groups": 2,
              "control_interval": 10.0}
    return spec.with_overrides(**{**common, **overrides})


def standard_suite_grids(replicates: int = 1, base_seed: int = 0) -> List[SweepGrid]:
    """One single-cell grid per suite scenario (replicated, seeded)."""
    return [SweepGrid(scenario=spec, replicates=replicates, base_seed=base_seed)
            for spec in STANDARD_SUITE]


def smoke_scenario(duration: float = 20.0, rate: float = 30.0) -> ScenarioSpec:
    """A seconds-long closed loop for smoke sweeps and determinism tests."""
    return ScenarioSpec(
        name="smoke",
        trace=TraceSpec("constant", {"rate": rate}),
        duration=duration,
        n_users=40,
        friend_cap=10,
        initial_groups=2,
        control_interval=10.0,
    )


def smoke_grid(runs: int = 4, base_seed: int = 0,
               duration: float = 20.0, rate: float = 30.0) -> SweepGrid:
    """The tiny grid ``make sweep-smoke`` executes with two workers."""
    return SweepGrid(scenario=smoke_scenario(duration=duration, rate=rate),
                     replicates=runs, base_seed=base_seed)


def suites() -> Dict[str, List[ScenarioSpec]]:
    """Named suites the sweep runner can be pointed at."""
    return {
        "standard": list(STANDARD_SUITE),
        "smoke": [smoke_scenario()],
    }
