"""The standard scenario suite, as declarative specs.

These mirror the closed-loop workloads the paper benchmarks drive through
:func:`repro.experiments.harness.run_closed_loop` — the flat CloudStone
closed loop the perf harness freezes, the write-heavy mix, the scale-down
diurnal cycle, the Halloween spike, the Animoto viral ramp, and the
cache-tier variant — so ``make sweep`` can run the whole family across
cores from one registry.  Durations are compressed the same way the
benchmarks compress them: every claim is about *relative* behaviour, so the
suite keeps the phenomena (ramps outpacing boot delays, troughs deep enough
to scale down into) at wall-clock costs a laptop can afford.

``smoke_suite`` is the tiny-grid variant ``make sweep-smoke`` and the
bench-smoke sweep harness use: seconds of simulated time per run, enough to
prove the fan-out machinery end to end without measuring anything.
"""

from __future__ import annotations

from typing import Dict, List

from repro.parallel.spec import ScenarioSpec, SweepGrid, TraceSpec

# The perf harness's frozen standard scenario (see
# benchmarks/bench_perf_throughput.py) expressed as data.
STANDARD_CLOSED_LOOP = ScenarioSpec(
    name="standard-closed-loop",
    trace=TraceSpec("constant", {"rate": 300.0}),
    duration=1200.0,
    n_users=300,
    autoscale=True,
    predictive_scaling=False,
    initial_groups=4,
    control_interval=30.0,
)

STANDARD_SUITE: List[ScenarioSpec] = [
    STANDARD_CLOSED_LOOP,
    ScenarioSpec(
        name="write-heavy",
        trace=TraceSpec("constant", {"rate": 150.0}),
        duration=900.0,
        n_users=300,
        mix="write_heavy",
        predictive_scaling=False,
        initial_groups=4,
    ),
    ScenarioSpec(
        name="diurnal-scale-down",
        trace=TraceSpec("diurnal", {"base_rate": 40.0, "peak_rate": 200.0,
                                    "period_hours": 1.0}),
        duration=5400.0,
        n_users=200,
        initial_groups=2,
    ),
    ScenarioSpec(
        name="halloween-spike",
        trace=TraceSpec("spike", {"base_rate": 60.0, "spike_multiplier": 4.0,
                                  "spike_start": 600.0, "rise_duration": 120.0,
                                  "hold_duration": 900.0,
                                  "decay_duration": 600.0}),
        duration=3000.0,
        n_users=200,
        initial_groups=2,
    ),
    ScenarioSpec(
        name="viral-ramp",
        trace=TraceSpec("viral", {"start_rate": 20.0, "peak_multiplier": 10.0,
                                  "ramp_start": 300.0,
                                  "ramp_duration": 2400.0}),
        duration=3600.0,
        n_users=200,
        initial_groups=2,
    ),
    ScenarioSpec(
        name="cache-tier",
        trace=TraceSpec("constant", {"rate": 300.0}),
        duration=1200.0,
        n_users=300,
        predictive_scaling=False,
        initial_groups=4,
        engine_knobs={"cache": True},
    ),
]


def standard_suite_grids(replicates: int = 1, base_seed: int = 0) -> List[SweepGrid]:
    """One single-cell grid per suite scenario (replicated, seeded)."""
    return [SweepGrid(scenario=spec, replicates=replicates, base_seed=base_seed)
            for spec in STANDARD_SUITE]


def smoke_scenario(duration: float = 20.0, rate: float = 30.0) -> ScenarioSpec:
    """A seconds-long closed loop for smoke sweeps and determinism tests."""
    return ScenarioSpec(
        name="smoke",
        trace=TraceSpec("constant", {"rate": rate}),
        duration=duration,
        n_users=40,
        friend_cap=10,
        initial_groups=2,
        control_interval=10.0,
    )


def smoke_grid(runs: int = 4, base_seed: int = 0,
               duration: float = 20.0, rate: float = 30.0) -> SweepGrid:
    """The tiny grid ``make sweep-smoke`` executes with two workers."""
    return SweepGrid(scenario=smoke_scenario(duration=duration, rate=rate),
                     replicates=runs, base_seed=base_seed)


def suites() -> Dict[str, List[ScenarioSpec]]:
    """Named suites the sweep runner can be pointed at."""
    return {
        "standard": list(STANDARD_SUITE),
        "smoke": [smoke_scenario()],
    }
