"""Deterministic multi-process sweep execution.

The executor is deliberately boring: every run in an expanded sweep is a pure
function of its :class:`~repro.parallel.spec.RunSpec` (the scenario data plus
a seed assigned at expansion time), so executing the list inline, across a
process pool, or across a pool of any size produces byte-identical per-run
results — parallelism only changes wall-clock time.  What the executor *does*
own is failure isolation (a run that raises becomes a structured
:class:`~repro.parallel.results.RunFailure`; its siblings are unaffected) and
progress streaming (an optional callback fired as each run completes).

Workers are forked when the platform allows it (no re-import, no sys.path
ceremony) and spawned otherwise; the choice cannot affect results because a
run constructs its entire world — simulator, cluster, app, RNG streams —
from the spec.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Union

from repro.experiments.harness import ClosedLoopSummary, default_spec, run_closed_loop
from repro.parallel.results import RunFailure, RunRecord, RunSuccess, SweepResult
from repro.parallel.spec import MIX_KINDS, RunSpec, ScenarioSpec, SweepGrid

ProgressCallback = Callable[[int, int, RunRecord], None]


def run_scenario(scenario: ScenarioSpec, seed: int) -> ClosedLoopSummary:
    """Execute one scenario spec with one seed; the worker-side entry point.

    Everything is built fresh from the spec — this function must stay a pure
    function of ``(scenario, seed)`` or parallel sweeps lose their
    serial-equivalence guarantee.
    """
    if scenario.mix not in MIX_KINDS:
        raise ValueError(
            f"unknown mix {scenario.mix!r}; registered: {sorted(MIX_KINDS)}"
        )
    result = run_closed_loop(
        trace=scenario.trace.build(),
        duration=scenario.duration,
        seed=seed,
        n_users=scenario.n_users,
        friend_cap=scenario.friend_cap,
        spec=default_spec(
            latency=scenario.sla_latency,
            percentile=scenario.sla_percentile,
            staleness_bound=scenario.staleness_bound,
            read_your_writes=scenario.read_your_writes,
        ),
        autoscale=scenario.autoscale,
        predictive_scaling=scenario.predictive_scaling,
        initial_groups=scenario.initial_groups,
        control_interval=scenario.control_interval,
        sampling_fraction=scenario.sampling_fraction,
        mix_kind=scenario.mix,
        fifo_updates=scenario.fifo_updates,
        engine_kwargs=dict(scenario.engine_knobs) or None,
        faults=scenario.faults,
    )
    return result.portable()


def execute_run(run: RunSpec) -> RunRecord:
    """Execute one run, converting any exception into a structured record.

    This is the function the pool maps over; it must stay module-level (a
    closure would not pickle under the spawn start method) and must never
    raise — a poisoned spec yields a :class:`RunFailure` carrying the
    traceback, and every sibling run proceeds untouched.
    """
    start = time.perf_counter()
    try:
        summary = run_scenario(run.scenario, run.seed)
        return RunSuccess(
            index=run.index,
            run_id=run.run_id,
            cell=run.cell,
            params=dict(run.params),
            seed=run.seed,
            summary=summary,
            wall_seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return RunFailure(
            index=run.index,
            run_id=run.run_id,
            cell=run.cell,
            params=dict(run.params),
            seed=run.seed,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
            wall_seconds=time.perf_counter() - start,
        )


def _failure_from_exception(run: RunSpec, exc: BaseException) -> RunFailure:
    """A record for failures *outside* the worker's own try (e.g. a worker
    process dying so hard the pool breaks, or a result that cannot unpickle)."""
    return RunFailure(
        index=run.index,
        run_id=run.run_id,
        cell=run.cell,
        params=dict(run.params),
        seed=run.seed,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(traceback.format_exception(type(exc), exc,
                                                     exc.__traceback__)),
    )


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    sweep: Union[SweepGrid, Sequence[RunSpec]],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute a sweep and collect its records in run-index order.

    Args:
        sweep: a :class:`SweepGrid` (expanded here) or a pre-expanded run
            list (e.g. to re-run a subset).
        workers: process count; ``<= 1`` runs inline in this process, which
            is guaranteed — and tested — to produce identical per-run results
            to any pooled execution of the same expansion.
        progress: optional callback ``(completed, total, record)`` streamed
            in completion order (pool scheduling order, not index order).
    """
    runs: List[RunSpec] = list(sweep.expand() if isinstance(sweep, SweepGrid)
                               else sweep)
    start = time.perf_counter()
    total = len(runs)
    records: List[Optional[RunRecord]] = [None] * total
    if not runs:
        return SweepResult(records=[], wall_seconds=0.0, workers=max(workers, 1))

    if workers <= 1 or total == 1:
        for position, run in enumerate(runs):
            record = execute_run(run)
            records[position] = record
            if progress is not None:
                progress(position + 1, total, record)
        return SweepResult(records=list(records),
                           wall_seconds=time.perf_counter() - start, workers=1)

    pool_size = min(workers, total)
    completed = 0
    with ProcessPoolExecutor(max_workers=pool_size,
                             mp_context=_preferred_context()) as pool:
        pending = {pool.submit(execute_run, run): (position, run)
                   for position, run in enumerate(runs)}
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                position, run = pending.pop(future)
                try:
                    record = future.result()
                except BaseException as exc:  # broken pool / unpicklable result
                    record = _failure_from_exception(run, exc)
                records[position] = record
                completed += 1
                if progress is not None:
                    progress(completed, total, record)
    # Every position must be filled: a silently dropped record would shift
    # every later index and corrupt the serial/parallel identity comparisons.
    assert all(r is not None for r in records)
    return SweepResult(records=list(records),
                       wall_seconds=time.perf_counter() - start,
                       workers=pool_size)
