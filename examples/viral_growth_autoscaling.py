"""Reproduce the Animoto scenario (paper Figure 1) in miniature.

A site's load grows by nearly two orders of magnitude over a (scaled-down)
"three days".  The ML-driven provisioning loop must rent machines ahead of
demand to keep the latency SLA, then release them when growth flattens.  The
script prints the load curve and the instance count over time — the same
curve the paper's Figure 1 shows for Animoto — plus cost compared against
statically provisioning for the peak.

Run with ``python examples/viral_growth_autoscaling.py``.
"""

from __future__ import annotations

import os
import sys

try:
    import repro  # noqa: F401 — probe: is the package on the path?
except ImportError:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.harness import run_closed_loop
from repro.workloads.traces import AnimotoViralTrace


def main() -> None:
    # One simulated "day" is compressed to 20 minutes so the example runs in
    # about a minute of wall-clock time; the growth *ratio* matches Figure 1.
    trace = AnimotoViralTrace(
        start_rate=15.0,
        peak_multiplier=20.0,
        ramp_start=300.0,
        ramp_duration=2400.0,
    )
    duration = 3600.0

    print("running the autoscaled system...")
    autoscaled = run_closed_loop(trace, duration, seed=3, n_users=150,
                                 autoscale=True, initial_groups=1)
    print("running the statically provisioned baseline (sized for the start)...")
    static = run_closed_loop(trace, duration, seed=3, n_users=150,
                             autoscale=False, initial_groups=1)

    series = autoscaled.engine.controller.series()
    print("\ntime(min)  load(ops/s)  nodes")
    nodes = series.get("nodes")
    rates = series.get("observed_rate")
    for i in range(0, len(nodes), max(len(nodes) // 20, 1)):
        t = nodes.times[i]
        print(f"{t / 60.0:8.1f}  {rates.value_at(t):10.1f}  {nodes.values[i]:5.0f}")

    print("\n                         autoscaled   static(start-sized)")
    for key in ("read_p_latency_ms", "read_sla_met", "peak_nodes", "dollars"):
        print(f"{key:<24} {autoscaled.summary()[key]!s:>12} {static.summary()[key]!s:>12}")
    growth = trace.rate_at(duration) / trace.rate_at(0.0)
    print(f"\nload grew {growth:.0f}x; the autoscaler grew the cluster "
          f"{autoscaled.peak_nodes / max(static.peak_nodes, 1):.1f}x larger than the static "
          f"baseline and kept the SLA: {autoscaled.read_report.satisfied} "
          f"(static: {static.read_report.satisfied})")


if __name__ == "__main__":
    main()
