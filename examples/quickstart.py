"""Quickstart: declare a schema, register query templates, write data, query it.

Run with ``python examples/quickstart.py``.  This is the five-minute tour of
the public API: everything an application developer touches is shown here —
schema declaration, query-template admission (including a rejection), writes,
reads, and the Figure-3 maintenance table SCADS derives automatically.
"""

from __future__ import annotations

import os
import sys

try:
    from repro import Scads
except ImportError:  # running from a source checkout without installation
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro import Scads

from repro.core.query.analyzer import QueryRejected
from repro.core.schema import EntitySchema, Field


def main() -> None:
    engine = Scads(seed=42, autoscale=False)
    engine.start()

    # 1. Declare entities with their cardinality bounds (the application K's).
    engine.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday"), Field("hometown")],
    ))
    engine.register_entity(EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=5000,          # Facebook's 5,000-friend limit
        column_bounds={"f2": 5000},
    ))

    # 2. Register query templates ahead of time.  Admitted templates get a
    #    pre-computed index; templates that cannot run scale-independently are
    #    rejected at declaration time, not at 3 a.m. in production.
    engine.register_query(
        "friend_birthdays",
        "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
        "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 10",
    )
    try:
        engine.register_query("everyone_in_town",
                              "SELECT * FROM profiles WHERE hometown = <town>")
    except QueryRejected as rejection:
        print(f"rejected as expected: {rejection}")

    # 3. Write data through the normal API; index maintenance is asynchronous.
    engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14",
                            "hometown": "berkeley"})
    engine.put("profiles", {"user_id": "bob", "name": "Bob", "birthday": "07-04",
                            "hometown": "oakland"})
    engine.put("profiles", {"user_id": "carol", "name": "Carol", "birthday": "01-02",
                            "hometown": "berkeley"})
    for friend in ("bob", "carol"):
        engine.put("friendships", {"f1": "alice", "f2": friend})
        engine.put("friendships", {"f1": friend, "f2": "alice"})
    engine.settle()  # let replication and index maintenance run

    # 4. Query: one bounded contiguous index range read + bounded dereferences.
    result = engine.query("friend_birthdays", {"user_id": "alice"})
    print("\nalice's friends by upcoming birthday:")
    for row in result.rows:
        print(f"  {row['name']:<8} {row['birthday']}")
    print(f"(query latency: {result.latency * 1000:.2f} ms, "
          f"{result.index_entries_read} index entries read)")

    # 5. The Figure-3 maintenance table SCADS derived from the templates.
    print("\nindex maintenance table (cf. paper Figure 3):")
    print(f"  {'Index':<28} {'Table':<16} Field")
    for rule in engine.maintenance_table():
        print(f"  {rule.index_name:<28} {rule.display_table():<16} {rule.field}")

    print(f"\nread SLA report: {engine.sla_report('read')}")


if __name__ == "__main__":
    main()
