"""A small social-network site running on SCADS under a realistic workload.

Builds the reference application (profiles, friendships, statuses, the
paper's three query templates), bulk-loads a synthetic social graph with
bounded degree, and drives it with the CloudStone-like operation mix for a
simulated half hour, printing SLA attainment and per-operation latencies.

Run with ``python examples/social_network_site.py``.
"""

from __future__ import annotations

import os
import sys

try:
    import repro  # noqa: F401 — probe: is the package on the path?
except ImportError:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.harness import build_engine_and_app, default_spec
from repro.workloads.generator import LoadGenerator
from repro.workloads.opmix import CloudStoneMix
from repro.workloads.traces import DiurnalTrace


def main() -> None:
    spec = default_spec(latency=0.150, percentile=99.0, staleness_bound=60.0,
                        read_your_writes=True)
    engine, app, graph = build_engine_and_app(
        seed=7, n_users=300, friend_cap=25, mean_friends=6.0,
        spec=spec, autoscale=True, initial_groups=2,
    )
    engine.start()
    print(f"loaded {len(graph.users())} users, "
          f"{sum(graph.friend_count(u) for u in graph.users()) // 2} friendships, "
          f"mean degree {graph.mean_degree():.1f}")
    print("declared consistency spec:")
    for axis, description in spec.describe().items():
        print(f"  {axis:<20} {description}")

    trace = DiurnalTrace(base_rate=20.0, peak_rate=80.0, peak_hour=0.5)
    mix = CloudStoneMix(graph, engine.sim.random.get("site-workload"))
    generator = LoadGenerator(engine.sim, trace, mix, app.execute)
    generator.start()
    engine.run_for(1800.0)  # half an hour of simulated traffic
    generator.stop()

    print(f"\nworkload: {generator.stats.operations_issued} operations "
          f"({generator.stats.writes_issued} writes)")
    print(f"page views served by the app: {app.stats.page_views}")
    print(f"cluster: {engine.cluster.node_count()} nodes in "
          f"{engine.cluster.group_count()} replica groups; "
          f"${engine.cost_so_far():.2f} spent")

    for op_type in ("read", "write"):
        report = engine.sla_report(op_type)
        print(f"\n{op_type} SLA ({spec.performance.describe()}):")
        print(f"  requests: {report.request_count}")
        print(f"  observed {report.target_percentile}th percentile: "
              f"{report.observed_percentile_latency * 1000:.1f} ms")
        print(f"  fraction within target: {report.observed_fraction_within:.4f}")
        print(f"  satisfied: {report.satisfied}")

    stats = engine.updater.stats()
    print(f"\nindex maintenance: {stats.completed} updates applied, "
          f"mean lag {stats.mean_lag:.2f}s, max lag {stats.max_lag:.2f}s, "
          f"deadline miss rate {stats.miss_rate:.4f}")


if __name__ == "__main__":
    main()
