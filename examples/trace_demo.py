"""Trace demo: end-to-end request tracing on the standard closed loop.

Run with ``python examples/trace_demo.py``.  Turns on the observability
layer (``Scads(telemetry=True)`` via the harness), drives a shortened
standard closed-loop scenario, and prints what the layer produces:

* the three slowest sampled traces with their per-span latency breakdown
  (every on-path span sums to the recorded end-to-end latency),
* per-window p99 latency attribution — which span kinds dominate the
  worst-decile operations in each window,
* the provisioning decision timeline — every control step with its full
  sizing rationale and SLA window verdicts,
* a counter/histogram snapshot of the unified telemetry registry.
"""

from __future__ import annotations

import os
import sys

try:
    from repro.experiments.harness import run_closed_loop
except ImportError:  # running from a source checkout without installation
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.experiments.harness import run_closed_loop

from repro.obs import attribute_windows, format_attribution
from repro.workloads.traces import ConstantTrace


def main() -> None:
    # The standard closed-loop shape (flat CloudStone mix, autoscaling on),
    # shortened so the demo finishes in seconds.  A denser sampling lattice
    # than the default keeps the report interesting at this duration.
    result = run_closed_loop(
        trace=ConstantTrace(rate=120.0),
        duration=300.0,
        seed=7,
        n_users=150,
        initial_groups=2,
        predictive_scaling=False,
        engine_kwargs={"telemetry": True},
    )
    engine = result.engine
    traces = engine.traces()

    print(f"sampled {len(traces)} traces over {result.duration:.0f}s "
          f"({result.operations} operations issued)")
    reconciled = sum(1 for t in traces if t.reconciles())
    print(f"span-sum reconciliation: {reconciled}/{len(traces)} traces\n")

    print("=== top-3 slowest traces ===")
    for trace in engine.tracer.slowest(3):
        print(trace.describe())
        print()

    print("=== per-window p99 latency attribution (worst decile) ===")
    print(format_attribution(attribute_windows(traces, window=60.0)))

    print("\n=== provisioning decision timeline (last 5 decisions) ===")
    print(engine.timeline.describe(last=5))
    print("\nfleet events:")
    for event in engine.timeline.events:
        print(f"  {event.describe()}")

    snapshot = engine.collect_telemetry().snapshot()
    print("\n=== telemetry counters ===")
    for name, value in snapshot["counters"].items():
        print(f"  {name:<32} {value}")
    print("\n=== telemetry histograms (p99 ms) ===")
    for name, stats in snapshot["histograms"].items():
        if stats.get("count"):
            print(f"  {name:<32} n={stats['count']:<7} "
                  f"p99={stats['p99'] * 1000:.3f}ms")


if __name__ == "__main__":
    main()
