"""Explore the declarative consistency axes of the paper's Figure 4.

The same application is run under three different declarative specifications:

* strict   — serializable writes, read-your-writes, tight staleness bound,
             consistency prioritised over availability;
* balanced — last-write-wins, read-your-writes, ten-minute staleness bound;
* relaxed  — last-write-wins, no session guarantees, relaxed durability.

The script reports what each choice costs (write latency, replication factor)
and what it buys (no stale reads for the session, bounded staleness), and
then demonstrates the partition-arbitration behaviour: with availability
prioritised the system serves possibly-stale data, with consistency
prioritised it refuses.

Run with ``python examples/consistency_tradeoffs.py``.
"""

from __future__ import annotations

import os
import sys

try:
    from repro import Scads
except ImportError:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro import Scads

from repro.core.consistency.spec import (
    Axis,
    ConsistencySpec,
    DurabilitySLA,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
    WriteConsistency,
    WritePolicy,
)
from repro.core.schema import EntitySchema, Field


SPECS = {
    "strict": ConsistencySpec(
        performance=PerformanceSLA(percentile=99.9, latency=0.1),
        write=WriteConsistency(WritePolicy.SERIALIZABLE),
        read=ReadConsistency(staleness_bound=5.0),
        session=SessionGuarantee(read_your_writes=True, monotonic_reads=True),
        durability=DurabilitySLA(probability=0.9999999),
        priority=[Axis.READ_CONSISTENCY, Axis.SESSION, Axis.DURABILITY, Axis.AVAILABILITY],
    ),
    "balanced": ConsistencySpec(
        performance=PerformanceSLA(percentile=99.9, latency=0.1),
        write=WriteConsistency(WritePolicy.LAST_WRITE_WINS),
        read=ReadConsistency(staleness_bound=600.0),
        session=SessionGuarantee(read_your_writes=True),
        durability=DurabilitySLA(probability=0.99999),
    ),
    "relaxed": ConsistencySpec(
        performance=PerformanceSLA(percentile=99.0, latency=0.2),
        write=WriteConsistency(WritePolicy.LAST_WRITE_WINS),
        read=ReadConsistency(staleness_bound=3600.0),
        session=SessionGuarantee(),
        durability=DurabilitySLA(probability=0.99),
    ),
}


def build_engine(spec: ConsistencySpec) -> Scads:
    engine = Scads(seed=21, autoscale=False, consistency=spec, initial_groups=2)
    engine.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("status")],
    ))
    engine.start()
    return engine


def measure(name: str, spec: ConsistencySpec) -> None:
    engine = build_engine(spec)
    write_latencies = []
    stale_session_reads = 0
    for i in range(100):
        user = f"user{i % 10}"
        outcome = engine.put("profiles", {"user_id": user, "name": user,
                                          "status": f"status {i}"}, session_id=user)
        write_latencies.append(outcome.latency)
        read = engine.get("profiles", (user,), session_id=user)
        if read.success and (read.row is None or read.row.get("status") != f"status {i}"):
            stale_session_reads += 1
        engine.run_for(0.5)
    mean_write_ms = 1000.0 * sum(write_latencies) / len(write_latencies)
    print(f"\n=== {name} ===")
    for axis, description in spec.describe().items():
        print(f"  {axis:<20} {description}")
    print(f"  -> replication factor chosen: {engine.replication_factor}")
    print(f"  -> mean write latency: {mean_write_ms:.2f} ms")
    print(f"  -> session-visible stale reads: {stale_session_reads} / 100")


def demonstrate_arbitration() -> None:
    print("\n=== partition arbitration (Section 3.3.1) ===")
    for label, priority in (
        ("availability first", [Axis.AVAILABILITY, Axis.READ_CONSISTENCY, Axis.SESSION]),
        ("consistency first", [Axis.READ_CONSISTENCY, Axis.SESSION, Axis.AVAILABILITY]),
    ):
        spec = ConsistencySpec(
            session=SessionGuarantee(read_your_writes=True),
            read=ReadConsistency(staleness_bound=30.0),
            priority=priority,
        )
        engine = build_engine(spec)
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "status": "pre-partition"},
                   session_id="alice")
        engine.settle()
        primaries = {group.primary for group in engine.cluster.groups.values()}
        engine.cluster.network.partition({"client"}, primaries)
        served = failed = 0
        for _ in range(20):
            outcome = engine.get("profiles", ("alice",), session_id="alice")
            served += outcome.success
            failed += not outcome.success
        print(f"  {label:<20} served={served:<3} failed={failed:<3} "
              f"(stale serves recorded: {engine.arbitrator.stale_serves()}, "
              f"failures recorded: {engine.arbitrator.failed_requests()})")


def main() -> None:
    for name, spec in SPECS.items():
        measure(name, spec)
    demonstrate_arbitration()


if __name__ == "__main__":
    main()
